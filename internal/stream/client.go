package stream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/middleware"
)

// sseHTTPClient is the pooled client for long-lived SSE connections.
// Deliberately not the api shared client: that one carries a 15s
// whole-request timeout, which would amputate every stream.
var sseHTTPClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:          64,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: 10 * time.Second,
	},
}

// IDHeader is stamped on every event a Subscription delivers: the
// event's stream ID at the server it came from. A consumer that wants
// exactly-once across its own death records EventID(ev) of the last
// event it fully processed and resumes a new Subscribe with it as
// AfterID — Subscription.LastID() alone counts events buffered into the
// channel, which the consumer may never have drained.
const IDHeader = "x-stream-id"

// EventID extracts the delivering stream's event ID stamped by the
// subscription (0 when the event didn't come through one).
func EventID(ev middleware.Event) uint64 {
	id, _ := strconv.ParseUint(ev.Headers[IDHeader], 10, 64)
	return id
}

// SubscribeOptions tune a client subscription.
type SubscribeOptions struct {
	// HTTP overrides the streaming HTTP client (must not set a
	// whole-request Timeout).
	HTTP *http.Client
	// Buffer is the delivery channel capacity (default 64). When the
	// consumer stops draining, backpressure propagates to the server,
	// which eventually evicts the subscription; the reconnect then
	// resumes from the last delivered ID.
	Buffer int
	// AfterID starts the subscription after a known event ID (resume of
	// an earlier subscription); zero starts live.
	AfterID uint64
	// BaseDelay is the first reconnect backoff step (default 200ms);
	// MaxDelay caps it (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (o SubscribeOptions) withDefaults() SubscribeOptions {
	if o.HTTP == nil {
		o.HTTP = sseHTTPClient
	}
	if o.Buffer <= 0 {
		o.Buffer = 64
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 200 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 5 * time.Second
	}
	return o
}

// Subscription is a live client subscription to a remote stream. It
// survives connection loss: every reconnect resumes with Last-Event-ID,
// and IDs at or below the last delivered one are dropped, so the Events
// channel sees every remote event at most once and — as long as the
// server's replay ring reaches back far enough — at least once.
type Subscription struct {
	// Events delivers the remote events in order. It closes when the
	// subscription ends: context cancellation, Close, or a terminal
	// server error (check Err).
	Events <-chan middleware.Event

	events     chan middleware.Event
	cancel     context.CancelFunc
	done       chan struct{}
	lastID     atomic.Uint64
	reconnects atomic.Uint64
	err        atomic.Value // error
}

// Subscribe opens a subscription to the stream endpoint of the service
// at baseURL for a topic pattern. It returns immediately; the network
// work happens behind the Events channel.
func Subscribe(ctx context.Context, baseURL, pattern string, opts SubscribeOptions) (*Subscription, error) {
	if err := middleware.ValidatePattern(pattern); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(ctx)
	s := &Subscription{
		events: make(chan middleware.Event, opts.Buffer),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	s.Events = s.events
	s.lastID.Store(opts.AfterID)
	streamURL := api.URL(baseURL, "/stream?topic="+url.QueryEscape(pattern))
	go s.run(ctx, streamURL, opts)
	return s, nil
}

// LastID returns the ID of the last event delivered (or the AfterID the
// subscription started from). Pass it as AfterID to a later Subscribe to
// resume where this subscription stopped.
func (s *Subscription) LastID() uint64 { return s.lastID.Load() }

// Reconnects returns how many times the subscription re-established its
// connection after the first.
func (s *Subscription) Reconnects() uint64 { return s.reconnects.Load() }

// Err returns the terminal error, if any, once Events is closed.
// Cancellation (of ctx or via Close) is a clean shutdown, not an error.
func (s *Subscription) Err() error {
	err, _ := s.err.Load().(error)
	return err
}

// Close ends the subscription and waits for Events to close.
func (s *Subscription) Close() {
	s.cancel()
	<-s.done
}

// terminalStatus reports server responses that retrying cannot fix
// (bad pattern, wrong endpoint, wrong method...).
func terminalStatus(status int) bool {
	return status >= 400 && status < 500 && status != http.StatusTooManyRequests
}

// run is the reconnect loop.
func (s *Subscription) run(ctx context.Context, streamURL string, opts SubscribeOptions) {
	defer close(s.done)
	defer close(s.events)
	attempt := 0
	for {
		gotEvents, err := s.consume(ctx, streamURL, opts)
		if ctx.Err() != nil {
			return // clean shutdown
		}
		var se *api.StatusError
		if errors.As(err, &se) && terminalStatus(se.Status) {
			s.err.Store(err)
			return
		}
		if gotEvents {
			attempt = 0 // the link worked; start backoff over
		}
		delay := opts.BaseDelay << attempt
		if delay > opts.MaxDelay || delay <= 0 {
			delay = opts.MaxDelay
		} else {
			attempt++
		}
		// Jitter to 50-150% so a restarted server isn't stampeded.
		delay = time.Duration(float64(delay) * (0.5 + rand.Float64()))
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return
		}
		s.reconnects.Add(1)
	}
}

// consume opens one connection and pumps events until it breaks.
func (s *Subscription) consume(ctx context.Context, streamURL string, opts SubscribeOptions) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Accept-Encoding", "identity")
	req.Header.Set("Cache-Control", "no-cache")
	if id := s.lastID.Load(); id > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(id, 10))
	}
	if rid := api.RequestIDFrom(ctx); rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	rsp, err := opts.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(rsp.Body, 512))
		return false, &api.StatusError{
			Method: http.MethodGet, URL: streamURL,
			Status: rsp.StatusCode, Body: strings.TrimSpace(string(body)),
		}
	}
	return s.pump(ctx, rsp.Body)
}

// pump parses SSE frames off one response body and delivers them.
func (s *Subscription) pump(ctx context.Context, body io.Reader) (bool, error) {
	br := bufio.NewReader(body)
	delivered := false
	var id uint64
	var data []byte
	flush := func() error {
		defer func() { id = 0; data = nil }()
		if len(data) == 0 {
			return nil // keep-alive comment or id-only frame
		}
		if id != 0 && id <= s.lastID.Load() {
			return nil // duplicate across a reconnect boundary
		}
		var ev middleware.Event
		if err := json.Unmarshal(data, &ev); err != nil {
			return fmt.Errorf("stream: bad event payload: %w", err)
		}
		if id != 0 {
			if ev.Headers == nil {
				ev.Headers = make(map[string]string, 1)
			}
			ev.Headers[IDHeader] = strconv.FormatUint(id, 10)
		}
		select {
		case s.events <- ev:
		case <-ctx.Done():
			return ctx.Err()
		}
		if id != 0 {
			s.lastID.Store(id)
		}
		delivered = true
		return nil
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return delivered, err // EOF or broken link: reconnect
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if err := flush(); err != nil {
				return delivered, err
			}
		case strings.HasPrefix(line, ":"):
			// comment (keep-alive / gap marker)
		case strings.HasPrefix(line, "id:"):
			if v, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64); err == nil {
				id = v
			}
		case strings.HasPrefix(line, "data:"):
			chunk := strings.TrimPrefix(line[5:], " ")
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, chunk...)
		default:
			// event:/retry:/unknown fields are irrelevant here
		}
	}
}

// Publisher is where a bridge or remote publisher injects events; both
// *middleware.Bus and *middleware.Node satisfy it.
type Publisher interface {
	Publish(ev middleware.Event) error
}

// RemotePublisher publishes events into a remote service's /v1/publish
// ingress. It satisfies the device-proxy Publisher contract, so a proxy
// on one host can feed the measurements database on another with no
// middleware TCP link.
//
// By default it does NOT retry: injection is not idempotent (a retry
// after a lost response duplicates the event, and the measurements
// store counts every copy), and the in-process bus this federates is
// itself at-most-once. A caller that prefers at-least-once can supply
// a retrying Transport explicitly.
type RemotePublisher struct {
	// BaseURL is the remote service's base URL.
	BaseURL string
	// Transport overrides the default single-attempt transport.
	Transport *api.Transport
}

// Publish POSTs one event to the remote ingress.
func (p *RemotePublisher) Publish(ev middleware.Event) error {
	tr := p.Transport
	if tr == nil {
		tr = &api.Transport{MaxAttempts: 1}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return tr.PostJSON(ctx, api.URL(p.BaseURL, "/publish"), ev, nil)
}
