package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/middleware"
	"repro/internal/obs"
)

// EventBus is the slice of bus behaviour the streaming service needs;
// both *middleware.Bus and *middleware.Node satisfy it.
type EventBus interface {
	Subscribe(pattern string, h middleware.Handler) (*middleware.Subscription, error)
	Publish(ev middleware.Event) error
}

// Options configure a Service.
type Options struct {
	// Hub configures the fan-out hub.
	Hub HubOptions
	// KeepAlive is the SSE comment heartbeat period, so half-open
	// connections are detected. Zero means the default (15s).
	KeepAlive time.Duration
	// PublishLimiter, when set, rate-limits the /publish ingress per
	// client IP (429 + Retry-After on rejection).
	PublishLimiter *api.RateLimiter
}

// Service bundles a Hub with the bus it observes and the HTTP endpoints
// that expose it: GET /v1/stream (SSE out) and POST /v1/publish (event
// ingress). Every service that owns a bus mounts one on its api.Server.
type Service struct {
	hub       *Hub
	bus       EventBus
	sub       *middleware.Subscription
	keepAlive time.Duration
	limiter   *api.RateLimiter
}

// NewService creates a streaming service over bus: every event the bus
// delivers flows into the hub (and out to SSE subscribers), and every
// event POSTed to /publish flows into the bus (and so to its local
// subscribers and back out the hub).
func NewService(bus EventBus, opts Options) (*Service, error) {
	hub, err := OpenHub(opts.Hub)
	if err != nil {
		return nil, err
	}
	sub, err := bus.Subscribe(middleware.WildcardRest, func(ev middleware.Event) {
		_ = hub.Publish(ev)
	})
	if err != nil {
		return nil, errors.Join(err, hub.Close())
	}
	keepAlive := opts.KeepAlive
	if keepAlive <= 0 {
		keepAlive = 15 * time.Second
	}
	return &Service{
		hub:       hub,
		bus:       bus,
		sub:       sub,
		keepAlive: keepAlive,
		limiter:   opts.PublishLimiter,
	}, nil
}

// Hub exposes the fan-out hub (stats, KickAll).
func (s *Service) Hub() *Hub { return s.hub }

// RegisterMetrics registers the hub's counters and live state on reg.
// Everything is a scrape-time callback over Hub.Stats()/QueueDepth(),
// so the fan-out path pays nothing for being observed.
func (s *Service) RegisterMetrics(reg *obs.Registry) {
	h := s.hub
	reg.CounterFunc("repro_stream_published_total",
		"Events sequenced into the hub.", nil,
		func() float64 { return float64(h.Stats().Published) })
	reg.CounterFunc("repro_stream_delivered_total",
		"Event deliveries into subscriber queues.", nil,
		func() float64 { return float64(h.Stats().Delivered) })
	reg.CounterFunc("repro_stream_evicted_total",
		"Subscribers evicted for falling behind.", nil,
		func() float64 { return float64(h.Stats().Evicted) })
	reg.CounterFunc("repro_stream_replayed_total",
		"Entries replayed to resuming subscribers.", nil,
		func() float64 { return float64(h.Stats().Replayed) })
	reg.CounterFunc("repro_stream_persist_errors_total",
		"Ring-log write failures of a durable hub.", nil,
		func() float64 { return float64(h.Stats().PersistErrors) })
	reg.GaugeFunc("repro_stream_subscribers",
		"Live hub subscribers.", nil,
		func() float64 { return float64(h.Stats().Subscribers) })
	reg.GaugeFunc("repro_stream_retained_events",
		"Entries held in the replay ring.", nil,
		func() float64 { return float64(h.Stats().Retained) })
	reg.GaugeFunc("repro_stream_subscriber_queue_depth",
		"Entries buffered across all subscriber queues.", nil,
		func() float64 { return float64(h.QueueDepth()) })
}

// Close detaches from the bus and shuts the hub down; every SSE
// subscriber's stream ends. The error is the hub ring log's close
// error (nil for a memory-only hub).
func (s *Service) Close() error {
	s.sub.Unsubscribe()
	return s.hub.Close()
}

// Mount registers the streaming endpoints on an api.Server:
//
//	GET  /v1/stream?topic=<pattern>   Server-Sent Events (Last-Event-ID resume)
//	POST /v1/publish                  body: middleware.Event JSON
func (s *Service) Mount(srv *api.Server) {
	srv.HandleFunc(http.MethodGet, "/stream", s.handleStream)
	var publish http.Handler = api.Body(s.publish)
	if s.limiter != nil {
		publish = api.RateLimit(s.limiter)(publish)
	}
	srv.Handle(http.MethodPost, "/publish", publish)
}

// publish injects a remote event into the local bus.
func (s *Service) publish(ctx context.Context, ev middleware.Event) (map[string]any, error) {
	if err := middleware.ValidateTopic(ev.Topic); err != nil {
		return nil, api.BadRequest(fmt.Errorf("bad topic %q: %w", ev.Topic, err))
	}
	if err := s.bus.Publish(ev); err != nil {
		return nil, err
	}
	return map[string]any{"status": "published", "topic": ev.Topic}, nil
}

// lastEventID reads the resume position: the standard Last-Event-ID
// header (what EventSource and our client send on reconnect) or a
// lastId query parameter (curl-friendly).
func lastEventID(r *http.Request) (uint64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("lastId")
	}
	if raw == "" {
		return 0, nil
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad Last-Event-ID %q: %v", raw, err)
	}
	return id, nil
}

// appendEntry renders one SSE frame (id + JSON-encoded event) into buf.
func appendEntry(buf *bytes.Buffer, e Entry) error {
	data, err := json.Marshal(e.Event)
	if err != nil {
		return err
	}
	fmt.Fprintf(buf, "id: %d\ndata: %s\n\n", e.ID, data)
	return nil
}

// maxWaveBytes bounds the coalescing buffer: a wave larger than this is
// written out in chunks, so a deep replay cannot balloon memory.
const maxWaveBytes = 64 << 10

// handleStream serves one SSE subscription until the client goes away,
// the hub evicts it, or the service closes.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	pattern := r.URL.Query().Get("topic")
	if pattern == "" {
		pattern = middleware.WildcardRest
	}
	afterID, err := lastEventID(r)
	if err != nil {
		api.WriteError(w, r, api.BadRequest(err))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		api.WriteError(w, r, api.Internal(fmt.Errorf("response writer cannot stream")))
		return
	}
	sub, replay, err := s.hub.Subscribe(pattern, afterID)
	if err != nil {
		api.WriteError(w, r, api.BadRequest(fmt.Errorf("bad pattern %q: %v", pattern, err)))
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // keep reverse proxies from buffering
	w.WriteHeader(http.StatusOK)

	// Frames are coalesced per wave: every frame ready to go out (the
	// replay batch, or one delivered event plus everything queued behind
	// it) is rendered into one buffer and hits the wire as a single
	// Write+Flush. Syscall and flush cost is paid per wave, not per
	// event — the dominant share of the SSE fan-out cost at high rates.
	var buf bytes.Buffer
	flushBuf := func() bool {
		if buf.Len() == 0 {
			return true
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return false
		}
		buf.Reset()
		flusher.Flush()
		return true
	}

	buf.WriteString("retry: 1000\n\n")
	if sub.Gap {
		// The client resumed past the replay ring; it gets everything
		// still retained plus a marker that the stream has a hole.
		buf.WriteString(": gap: resume point expired from replay buffer\n\n")
	}
	for _, e := range replay {
		if err := appendEntry(&buf, e); err != nil {
			return
		}
		if buf.Len() >= maxWaveBytes && !flushBuf() {
			return
		}
	}
	if !flushBuf() {
		return
	}

	ticker := time.NewTicker(s.keepAlive)
	defer ticker.Stop()
	for {
		select {
		case e, ok := <-sub.C:
			if !ok {
				return // evicted or hub closed: client reconnects and resumes
			}
			if err := appendEntry(&buf, e); err != nil {
				return
			}
			// Coalesce whatever queued behind it into the same wave.
			for drained := false; !drained && buf.Len() < maxWaveBytes; {
				select {
				case e, ok := <-sub.C:
					if !ok {
						flushBuf()
						return
					}
					if err := appendEntry(&buf, e); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			if !flushBuf() {
				return
			}
		case <-ticker.C:
			buf.WriteString(": keep-alive\n\n")
			if !flushBuf() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
