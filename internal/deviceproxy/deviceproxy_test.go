package deviceproxy

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/measuredb"
	"repro/internal/middleware"
	"repro/internal/proxyhttp"
)

// fakeDriver is a scriptable dedicated layer.
type fakeDriver struct {
	mu       sync.Mutex
	readings []Reading
	pollErr  error
	actuated []ControlRequest
	actErr   error
	closed   bool
}

func (f *fakeDriver) Poll() ([]Reading, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pollErr != nil {
		return nil, f.pollErr
	}
	return append([]Reading(nil), f.readings...), nil
}

func (f *fakeDriver) Actuate(q dataformat.Quantity, v float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.actErr != nil {
		return f.actErr
	}
	f.actuated = append(f.actuated, ControlRequest{Quantity: q, Value: v})
	return nil
}

func (f *fakeDriver) Protocol() string { return "fake" }

func (f *fakeDriver) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	return nil
}

const testURI = "urn:district:turin/building:b01/device:t-1"

func newProxy(t *testing.T, drv Driver, pub Publisher) (*Proxy, string) {
	t.Helper()
	p, err := New(Options{
		DeviceURI: testURI,
		Name:      "Temp Lab 1",
		Driver:    drv,
		Model:     "SIM-1",
		Senses:    []dataformat.Quantity{dataformat.Temperature},
		Actuates:  []dataformat.Quantity{dataformat.SwitchState},
		Location:  &dataformat.Location{Latitude: 45.06, Longitude: 7.66},
		PollEvery: time.Hour, // poll manually via PollOnce
		Publisher: pub,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Run("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p, addr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Driver: &fakeDriver{}}); err == nil {
		t.Error("missing URI accepted")
	}
	if _, err := New(Options{DeviceURI: "urn:x"}); err == nil {
		t.Error("missing driver accepted")
	}
}

func TestPollOnceBuffersAndPublishes(t *testing.T) {
	bus := middleware.NewBus(middleware.BusOptions{QueueLen: -1})
	defer bus.Close()
	var events []middleware.Event
	_, _ = bus.Subscribe("measurements/#", func(ev middleware.Event) {
		events = append(events, ev)
	})

	drv := &fakeDriver{readings: []Reading{
		{Quantity: dataformat.Temperature, Value: 21.5, Unit: dataformat.Celsius, Battery: 90},
		{Quantity: dataformat.Humidity, Value: 44, Unit: dataformat.Percent, Battery: 90},
	}}
	p, _ := newProxy(t, drv, bus)
	p.PollOnce()

	st := p.Stats()
	if st.Polls != 1 || st.Samples != 2 || st.Published != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	doc, err := dataformat.Decode(events[0].Payload, dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Measurement.Device != testURI || doc.Measurement.Protocol != "fake" {
		t.Errorf("published measurement = %+v", doc.Measurement)
	}
	wantTopic := measuredb.Topic(testURI, doc.Measurement.Quantity)
	if events[0].Topic != wantTopic {
		t.Errorf("topic = %q, want %q", events[0].Topic, wantTopic)
	}
}

func TestPollErrorCounted(t *testing.T) {
	drv := &fakeDriver{pollErr: errors.New("radio down")}
	p, _ := newProxy(t, drv, nil)
	p.PollOnce()
	st := p.Stats()
	if st.Polls != 1 || st.PollErrs != 1 || st.Samples != 0 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestInfoEndpoint(t *testing.T) {
	drv := &fakeDriver{readings: []Reading{{Quantity: dataformat.Temperature, Value: 20, Unit: dataformat.Celsius, Battery: 77}}}
	p, addr := newProxy(t, drv, nil)
	p.PollOnce()

	doc, err := proxyhttp.GetDoc(nil, "http://"+addr+"/info", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	d := doc.Device
	if d == nil || d.URI != testURI || d.Protocol != "fake" || d.Model != "SIM-1" {
		t.Fatalf("info = %+v", d)
	}
	if d.BatteryPC != 77 {
		t.Errorf("battery = %v", d.BatteryPC)
	}
	if len(d.Senses) != 1 || d.Senses[0] != dataformat.Temperature {
		t.Errorf("senses = %v", d.Senses)
	}
	// XML negotiation.
	doc, err = proxyhttp.GetDoc(nil, "http://"+addr+"/info", dataformat.XML)
	if err != nil || doc.Device.Name != "Temp Lab 1" {
		t.Errorf("xml info: %v %+v", err, doc.Device)
	}
}

func TestDataAndLatestEndpoints(t *testing.T) {
	drv := &fakeDriver{}
	p, addr := newProxy(t, drv, nil)
	for i := 0; i < 5; i++ {
		drv.mu.Lock()
		drv.readings = []Reading{{Quantity: dataformat.Temperature, Value: 20 + float64(i), Unit: dataformat.Celsius, Battery: -1}}
		drv.mu.Unlock()
		p.PollOnce()
	}

	doc, err := proxyhttp.GetDoc(nil, "http://"+addr+"/data?quantity=temperature", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Measurements) != 5 {
		t.Fatalf("measurements = %d", len(doc.Measurements))
	}
	if doc.Measurements[4].Value != 24 {
		t.Errorf("last value = %v", doc.Measurements[4].Value)
	}

	doc, err = proxyhttp.GetDoc(nil, "http://"+addr+"/latest?quantity=temperature", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Measurement.Value != 24 {
		t.Errorf("latest = %+v", doc.Measurement)
	}
}

func TestDataEndpointErrors(t *testing.T) {
	p, addr := newProxy(t, &fakeDriver{}, nil)
	_ = p
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/data", http.StatusBadRequest},
		{"/data?quantity=temperature", http.StatusNotFound},
		{"/data?quantity=temperature&from=garbage", http.StatusBadRequest},
		{"/latest?quantity=temperature", http.StatusNotFound},
		{"/latest", http.StatusBadRequest},
	} {
		rsp, err := http.Get("http://" + addr + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode != tc.want {
			t.Errorf("%s = %d, want %d", tc.path, rsp.StatusCode, tc.want)
		}
	}
}

func TestDataRangeFilter(t *testing.T) {
	drv := &fakeDriver{}
	p, addr := newProxy(t, drv, nil)
	base := time.Now().UTC().Add(-time.Hour).Truncate(time.Second)
	for i := 0; i < 10; i++ {
		drv.mu.Lock()
		drv.readings = []Reading{{
			Quantity: dataformat.Temperature, Value: float64(i),
			Unit: dataformat.Celsius, Battery: -1,
			At: base.Add(time.Duration(i) * time.Minute),
		}}
		drv.mu.Unlock()
		p.PollOnce()
	}
	u := fmt.Sprintf("http://%s/data?quantity=temperature&from=%s&to=%s", addr,
		url.QueryEscape(base.Add(2*time.Minute).Format(time.RFC3339)),
		url.QueryEscape(base.Add(5*time.Minute).Format(time.RFC3339)))
	doc, err := proxyhttp.GetDoc(nil, u, dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Measurements) != 4 {
		t.Errorf("range query = %d measurements, want 4", len(doc.Measurements))
	}
}

func TestControlEndpoint(t *testing.T) {
	drv := &fakeDriver{}
	p, addr := newProxy(t, drv, nil)

	body, _ := json.Marshal(ControlRequest{Quantity: dataformat.SwitchState, Value: 1})
	rsp, err := http.Post("http://"+addr+"/control", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := dataformat.DecodeFrom(rsp.Body, dataformat.JSON)
	rsp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Control.Applied || doc.Control.Device != testURI {
		t.Fatalf("control = %+v", doc.Control)
	}
	drv.mu.Lock()
	n := len(drv.actuated)
	drv.mu.Unlock()
	if n != 1 {
		t.Fatalf("driver actuated %d times", n)
	}
	if p.Stats().Controls != 1 {
		t.Errorf("Controls = %d", p.Stats().Controls)
	}
}

func TestControlFailureReported(t *testing.T) {
	drv := &fakeDriver{actErr: ErrNotActuator}
	_, addr := newProxy(t, drv, nil)
	body, _ := json.Marshal(ControlRequest{Quantity: dataformat.SwitchState, Value: 1})
	rsp, err := http.Post("http://"+addr+"/control", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := dataformat.DecodeFrom(rsp.Body, dataformat.JSON)
	rsp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Control.Applied || doc.Control.Error == "" {
		t.Errorf("control = %+v", doc.Control)
	}
}

func TestControlRejects(t *testing.T) {
	_, addr := newProxy(t, &fakeDriver{}, nil)
	rsp, _ := http.Get("http://" + addr + "/control")
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /control = %d", rsp.StatusCode)
	}
	rsp, _ = http.Post("http://"+addr+"/control", "application/json", bytes.NewReader([]byte("{")))
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage /control = %d", rsp.StatusCode)
	}
	rsp, _ = http.Post("http://"+addr+"/control", "application/json", bytes.NewReader([]byte("{}")))
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty quantity /control = %d", rsp.StatusCode)
	}
}

func TestSampleLoopRuns(t *testing.T) {
	drv := &fakeDriver{readings: []Reading{{Quantity: dataformat.Temperature, Value: 1, Unit: dataformat.Celsius, Battery: -1}}}
	p, err := New(Options{
		DeviceURI: testURI, Driver: drv, PollEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().Polls >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Close()
	if p.Stats().Polls < 3 {
		t.Fatalf("sampling loop made %d polls", p.Stats().Polls)
	}
	drv.mu.Lock()
	closed := drv.closed
	drv.mu.Unlock()
	if !closed {
		t.Error("Close did not close the driver")
	}
}

func TestAggregateEndpoint(t *testing.T) {
	drv := &fakeDriver{}
	p, addr := newProxy(t, drv, nil)
	base := time.Now().UTC().Add(-time.Hour).Truncate(5 * time.Minute)
	for i := 0; i < 10; i++ {
		drv.mu.Lock()
		drv.readings = []Reading{{
			Quantity: dataformat.Temperature, Value: float64(i),
			Unit: dataformat.Celsius, Battery: -1,
			At: base.Add(time.Duration(i) * time.Minute),
		}}
		drv.mu.Unlock()
		p.PollOnce()
	}
	u := fmt.Sprintf("http://%s/aggregate?quantity=temperature&window=5m&from=%s&to=%s", addr,
		url.QueryEscape(base.Format(time.RFC3339)),
		url.QueryEscape(base.Add(10*time.Minute).Format(time.RFC3339)))
	rsp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate = %d", rsp.StatusCode)
	}
	var buckets []struct {
		Count int
		Mean  float64
	}
	if err := json.NewDecoder(rsp.Body).Decode(&buckets); err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 || buckets[0].Count != 5 || buckets[0].Mean != 2 {
		t.Fatalf("buckets = %+v", buckets)
	}

	for _, bad := range []string{
		"/aggregate",
		"/aggregate?quantity=temperature", // no window
		"/aggregate?quantity=temperature&window=banana",
		"/aggregate?quantity=ghost&window=1m", // unknown series
		"/aggregate?quantity=temperature&window=1m&from=garbage",
	} {
		rsp, err := http.Get("http://" + addr + bad)
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode == http.StatusOK {
			t.Errorf("%s unexpectedly OK", bad)
		}
	}
}

// captureWriter is a SampleWriter recording the rows it receives.
type captureWriter struct {
	mu   sync.Mutex
	rows []measuredb.Point
}

func (w *captureWriter) Add(p measuredb.Point) error {
	w.mu.Lock()
	w.rows = append(w.rows, p)
	w.mu.Unlock()
	return nil
}

// capturePublisher counts bus-hop publications.
type capturePublisher struct {
	mu     sync.Mutex
	events int
}

func (p *capturePublisher) Publish(middleware.Event) error {
	p.mu.Lock()
	p.events++
	p.mu.Unlock()
	return nil
}

// TestWriterSupersedesPublisher checks the /v2 ingest Writer receives
// every collected sample as a self-contained row and the deprecated
// Publisher is skipped when both are configured (no double writes).
func TestWriterSupersedesPublisher(t *testing.T) {
	drv := &fakeDriver{readings: []Reading{
		{Quantity: dataformat.Temperature, Value: 21.5, Unit: dataformat.Celsius},
		{Quantity: dataformat.Humidity, Value: 44, Unit: dataformat.Percent},
	}}
	w := &captureWriter{}
	pub := &capturePublisher{}
	p, err := New(Options{
		DeviceURI: testURI,
		Driver:    drv,
		PollEvery: time.Hour,
		Writer:    w,
		Publisher: pub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.PollOnce()
	w.mu.Lock()
	rows := append([]measuredb.Point(nil), w.rows...)
	w.mu.Unlock()
	if len(rows) != 2 {
		t.Fatalf("writer received %d rows, want 2", len(rows))
	}
	if rows[0].Device != testURI || rows[0].Quantity != "temperature" || rows[0].Value != 21.5 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[0].At.IsZero() {
		t.Fatal("row without timestamp")
	}
	pub.mu.Lock()
	events := pub.events
	pub.mu.Unlock()
	if events != 0 {
		t.Fatalf("deprecated publisher still received %d events", events)
	}
	if got := p.Stats().Published; got != 2 {
		t.Fatalf("published counter = %d", got)
	}
}
