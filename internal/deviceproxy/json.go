package deviceproxy

import (
	"encoding/json"
	"io"
	"net/http"
)

// jsonMarshal and jsonDecode isolate the JSON plumbing of the web layer.

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

func jsonDecode(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
