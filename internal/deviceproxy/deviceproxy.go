// Package deviceproxy implements the Device-proxy of Fig. 1(b) of the
// paper, with its three layers:
//
//  1. the *dedicated layer* — a protocol-specific Driver that collects
//     data from the device (and pushes actuation commands to it);
//  2. the *local database* — a time-series buffer of collected samples;
//  3. the *Web Service layer* — the REST interface for remote management,
//     data access and actuator control, which also publishes every
//     sample into the middleware network with a publish/subscribe
//     approach and registers the proxy on the master node.
package deviceproxy

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/measuredb"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/proxyhttp"
	"repro/internal/registry"
	"repro/internal/stream"
	"repro/internal/tsdb"
)

func init() {
	// Store sentinels → HTTP statuses. Also registered by measuredb;
	// RegisterStatus dedupes, and registering here keeps /data status
	// mapping correct even if the measuredb import ever goes away.
	api.RegisterStatus(tsdb.ErrNoSeries, http.StatusNotFound)
	api.RegisterStatus(tsdb.ErrBadInterval, http.StatusBadRequest)
}

// Reading is one sample the dedicated layer collected from the device.
type Reading struct {
	Quantity dataformat.Quantity
	Value    float64
	Unit     dataformat.Unit
	// Battery is the device battery percentage; negative means unknown
	// (mains-powered or energy-harvesting devices).
	Battery float64
	// At is the sample time; zero means "now".
	At time.Time
}

// Driver is the dedicated layer: the protocol-specific adapter between
// the proxy and one physical (here: simulated) device.
type Driver interface {
	// Poll collects the device's current readings.
	Poll() ([]Reading, error)
	// Actuate pushes a command to the device.
	Actuate(q dataformat.Quantity, value float64) error
	// Protocol names the device's native technology.
	Protocol() string
	// Close releases the driver's resources.
	Close() error
}

// ErrNotActuator is returned by drivers for unsupported actuation.
var ErrNotActuator = errors.New("deviceproxy: device has no actuator for quantity")

// Publisher abstracts where the web-service layer publishes samples: an
// in-process middleware bus or a networked node.
type Publisher interface {
	Publish(ev middleware.Event) error
}

// SampleWriter is the /v2 ingest hook: collected samples are handed to
// it as self-contained rows, batched and shipped by the implementation
// (client.(*Ingest).Batcher is the canonical one). Compared to the bus
// hop, rows arrive at the measurements DB without a document re-decode
// and in size/interval-coalesced batches.
type SampleWriter interface {
	Add(p measuredb.Point) error
}

// Options configure a device proxy.
type Options struct {
	// DeviceURI is the device's ontology URI (required).
	DeviceURI string
	// Name is the device's human-readable name.
	Name string
	// Driver is the dedicated layer (required).
	Driver Driver
	// Model describes the hardware.
	Model string
	// Senses and Actuates describe the device's capabilities for /info.
	Senses   []dataformat.Quantity
	Actuates []dataformat.Quantity
	// Location georeferences the device.
	Location *dataformat.Location
	// PollEvery is the dedicated layer's sampling period (default 1s).
	PollEvery time.Duration
	// LocalEngine overrides the middle layer with any storage engine —
	// e.g. a durable tsdb.OpenSharded engine so the proxy's sample
	// buffer survives a restart (-data-dir on the deviceproxy binary).
	LocalEngine tsdb.Engine
	// LocalDB overrides the middle layer store.
	//
	// Deprecated: use LocalEngine (a *tsdb.Store satisfies it); kept so
	// pre-engine callers compile. Ignored when LocalEngine is set.
	LocalDB *tsdb.Store
	// Writer, when set, ships every collected sample to the measurements
	// DB through the /v2 ingest plane (typically a client ingest
	// batcher). It supersedes Publisher for the global write path; the
	// proxy still publishes on its own bus for its local /v1/stream
	// subscribers either way.
	Writer SampleWriter
	// Publisher receives measurement events (nil disables publishing).
	// Ignored when Writer is set, so a migrating deployment doesn't
	// double-write.
	//
	// Deprecated: the one-event-per-sample bus hop; prefer Writer (the
	// batched /v2 ingest plane). Kept as the fallback for federated
	// topologies that still relay through the middleware network.
	Publisher Publisher
	// MasterURL, when set, registers the proxy with the master node.
	MasterURL string
	// ProxyID overrides the registration ID (default: derived from URI).
	ProxyID string
	// RateLimit, when set, throttles the hot data routes (/data, /latest,
	// /aggregate) and the stream publish ingress per client IP. It is
	// surfaced in /v1/metrics as the "read" tier.
	RateLimit *api.RateLimiter
	// Stream tunes the proxy's streaming subsystem.
	Stream stream.Options
	// DisableLegacyAliases drops the unversioned route aliases; only
	// versioned paths are then served.
	DisableLegacyAliases bool
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof.
	EnablePprof bool
	// SlowRequest is the span-duration threshold above which requests are
	// logged (0 = 1s; negative disables).
	SlowRequest time.Duration
}

// Proxy is a running device proxy.
type Proxy struct {
	opts    Options
	store   tsdb.Engine
	srv     proxyhttp.Server
	apiS    *api.Server
	reg     *proxyhttp.Registrar
	bus     *middleware.Bus
	streamS *stream.Service

	mu      sync.Mutex
	battery float64
	stopCh  chan struct{}
	wg      sync.WaitGroup
	started bool

	stats struct {
		sync.Mutex
		polls     uint64
		pollErrs  uint64
		samples   uint64
		published uint64
		controls  uint64
	}
}

// New creates a device proxy. Run starts its layers.
func New(opts Options) (*Proxy, error) {
	if opts.DeviceURI == "" {
		return nil, errors.New("deviceproxy: missing DeviceURI")
	}
	if opts.Driver == nil {
		return nil, errors.New("deviceproxy: missing Driver")
	}
	if opts.PollEvery <= 0 {
		opts.PollEvery = time.Second
	}
	var store tsdb.Engine = opts.LocalEngine
	if store == nil && opts.LocalDB != nil {
		store = opts.LocalDB
	}
	if store == nil {
		store = tsdb.New(tsdb.Options{MaxSamplesPerSeries: 8192})
	}
	p := &Proxy{opts: opts, store: store, battery: -1, stopCh: make(chan struct{})}
	// The proxy's own bus carries every sample it collects; the stream
	// service federates it, so remote peers can subscribe to this one
	// device live without any middleware TCP link.
	p.bus = middleware.NewBus(middleware.BusOptions{QueueLen: -1})
	streamOpts := opts.Stream
	if streamOpts.PublishLimiter == nil {
		streamOpts.PublishLimiter = opts.RateLimit
	}
	p.streamS, _ = stream.NewService(p.bus, streamOpts)
	p.apiS = p.buildAPI()
	return p, nil
}

// Bus exposes the proxy's event bus (everything the proxy publishes).
func (p *Proxy) Bus() *middleware.Bus { return p.bus }

// Stream exposes the proxy's streaming service.
func (p *Proxy) Stream() *stream.Service { return p.streamS }

// Metrics exposes the per-route API metrics.
func (p *Proxy) Metrics() *api.Metrics { return p.apiS.Metrics() }

// SetLegacyAliases toggles the unversioned route aliases at runtime.
func (p *Proxy) SetLegacyAliases(enabled bool) { p.apiS.SetLegacyAliases(enabled) }

// LocalDB exposes the middle layer (tests, benchmarks).
func (p *Proxy) LocalDB() tsdb.Engine { return p.store }

// Run starts the web service on addr, the sampling loop, and (when a
// master URL is configured) the registration. It returns the bound
// web-service address.
func (p *Proxy) Run(addr string) (string, error) {
	bound, err := p.srv.Serve(addr, p.Handler())
	if err != nil {
		return "", err
	}
	if p.opts.MasterURL != "" {
		id := p.opts.ProxyID
		if id == "" {
			id = "devproxy:" + p.opts.DeviceURI
		}
		p.reg = &proxyhttp.Registrar{
			MasterURL: p.opts.MasterURL,
			Registration: registry.Registration{
				ID:        id,
				Kind:      registry.KindDevice,
				BaseURL:   "http://" + bound + "/",
				EntityURI: p.opts.DeviceURI,
				Protocol:  p.opts.Driver.Protocol(),
			},
		}
		if err := p.reg.Start(); err != nil {
			p.srv.Close()
			return "", err
		}
	}
	p.mu.Lock()
	p.started = true
	p.mu.Unlock()
	p.wg.Add(1)
	go p.sampleLoop()
	return bound, nil
}

// sampleLoop is the dedicated layer's collection loop.
func (p *Proxy) sampleLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.opts.PollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			p.PollOnce()
		case <-p.stopCh:
			return
		}
	}
}

// PollOnce performs one collection cycle: poll the driver, buffer the
// readings in the local database, publish them to the middleware. It is
// exported so simulations and benchmarks can drive the proxy without
// waiting on timers.
func (p *Proxy) PollOnce() {
	readings, err := p.opts.Driver.Poll()
	p.stats.Lock()
	p.stats.polls++
	if err != nil {
		p.stats.pollErrs++
		p.stats.Unlock()
		return
	}
	p.stats.Unlock()
	if len(readings) == 0 {
		return
	}
	now := time.Now().UTC()
	var ms []dataformat.Measurement
	for _, r := range readings {
		at := r.At
		if at.IsZero() {
			at = now
		}
		if r.Battery >= 0 {
			p.mu.Lock()
			p.battery = r.Battery
			p.mu.Unlock()
		}
		key := tsdb.SeriesKey{Device: p.opts.DeviceURI, Quantity: string(r.Quantity)}
		if err := p.store.Append(key, tsdb.Sample{At: at, Value: r.Value}); err != nil {
			continue
		}
		p.stats.Lock()
		p.stats.samples++
		p.stats.Unlock()
		ms = append(ms, dataformat.Measurement{
			Source:    "http://" + p.srv.Addr() + "/",
			Device:    p.opts.DeviceURI,
			Protocol:  p.opts.Driver.Protocol(),
			Quantity:  r.Quantity,
			Unit:      r.Unit,
			Value:     r.Value,
			Timestamp: at,
			Location:  p.opts.Location,
		})
	}
	p.publish(ms)
}

// publish ships measurements out of the proxy: always onto its own bus
// (feeding its /v1/stream subscribers), then either to the /v2 ingest
// Writer as self-contained rows (the batched write path) or, as the
// deprecated fallback, to the external Publisher one event per
// measurement (middleware node or remote HTTP ingress).
func (p *Proxy) publish(ms []dataformat.Measurement) {
	for i := range ms {
		payload, err := dataformat.NewMeasurementDoc(ms[i]).Encode(dataformat.JSON)
		if err != nil {
			continue
		}
		ev := middleware.Event{
			Topic:   measuredb.Topic(ms[i].Device, ms[i].Quantity),
			Payload: payload,
			Headers: map[string]string{"content-type": "application/json"},
			At:      ms[i].Timestamp,
		}
		_ = p.bus.Publish(ev)
		switch {
		case p.opts.Writer != nil:
			row := measuredb.Point{
				Device:   ms[i].Device,
				Quantity: string(ms[i].Quantity),
				At:       ms[i].Timestamp,
				Value:    ms[i].Value,
			}
			if err := p.opts.Writer.Add(row); err == nil {
				p.stats.Lock()
				p.stats.published++
				p.stats.Unlock()
			}
		case p.opts.Publisher != nil:
			if err := p.opts.Publisher.Publish(ev); err == nil {
				p.stats.Lock()
				p.stats.published++
				p.stats.Unlock()
			}
		}
	}
}

// Stats are cumulative proxy counters. Published counts samples handed
// off the proxy: accepted by the Writer's batcher (delivery outcomes
// are the batcher's OnError/OnResult and the DB's own counters) or, on
// the deprecated path, successfully published to the Publisher.
type Stats struct {
	Polls     uint64 `json:"polls"`
	PollErrs  uint64 `json:"pollErrors"`
	Samples   uint64 `json:"samples"`
	Published uint64 `json:"published"`
	Controls  uint64 `json:"controls"`
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() Stats {
	p.stats.Lock()
	defer p.stats.Unlock()
	return Stats{
		Polls: p.stats.polls, PollErrs: p.stats.pollErrs,
		Samples: p.stats.samples, Published: p.stats.published,
		Controls: p.stats.controls,
	}
}

// Close stops the proxy: sampling loop, registration, web service,
// driver, local database.
func (p *Proxy) Close() {
	p.mu.Lock()
	started := p.started
	p.started = false
	p.mu.Unlock()
	if started {
		close(p.stopCh)
		p.wg.Wait()
	}
	if p.reg != nil {
		p.reg.Stop()
	}
	p.srv.Close()
	if err := p.streamS.Close(); err != nil {
		log.Printf("deviceproxy: stream close: %v", err)
	}
	p.bus.Close()
	_ = p.opts.Driver.Close()
	p.store.Close()
}

// buildAPI registers the web-service layer on the unified API layer
// (versioned /v1 paths with legacy aliases):
//
//	GET  /v1/info                        device description document
//	GET  /v1/data?quantity=&from=&to=    buffered samples
//	GET  /v1/latest?quantity=            most recent sample
//	GET  /v1/aggregate?quantity=&window= downsampled buckets
//	POST /v1/control                     control-result document back
//	POST /v1/devices/actuate             batch actuation (many quantities)
//	GET  /v1/stats
//	GET  /v1/stream?topic=<pattern>      live samples (SSE)
//	POST /v1/publish                     event ingress (middleware.Event JSON)
//	GET  /v1/metrics, /v1/healthz
//
// The hot data routes are rate-limited per client IP when Options.RateLimit
// is set (429 + Retry-After on rejection).
func (p *Proxy) buildAPI() *api.Server {
	s := api.NewServer(api.Options{
		Service:              "deviceproxy",
		DisableLegacyAliases: p.opts.DisableLegacyAliases,
		EnablePprof:          p.opts.EnablePprof,
		SlowRequest:          p.opts.SlowRequest,
	})
	reg := obs.NewRegistry()
	p.streamS.RegisterMetrics(reg)
	reg.GaugeFunc("repro_device_buffer_samples",
		"Samples held in the proxy's local buffer.", nil,
		func() float64 { return float64(p.store.Stats().Samples) })
	reg.GaugeFunc("repro_device_buffer_series",
		"Series held in the proxy's local buffer.", nil,
		func() float64 { return float64(p.store.Stats().Series) })
	s.Metrics().AttachRegistry(reg)
	limit := func(h http.Handler) http.Handler {
		if p.opts.RateLimit == nil {
			return h
		}
		return api.RateLimit(p.opts.RateLimit)(h)
	}
	s.Metrics().RegisterLimiter("read", p.opts.RateLimit)
	if p.opts.Stream.PublishLimiter != nil && p.opts.Stream.PublishLimiter != p.opts.RateLimit {
		s.Metrics().RegisterLimiter("publish", p.opts.Stream.PublishLimiter)
	}
	s.Get("/info", p.info)
	s.Handle(http.MethodGet, "/data", limit(api.Query(p.data)))
	s.Handle(http.MethodGet, "/latest", limit(api.Query(p.latest)))
	s.Handle(http.MethodGet, "/aggregate", limit(api.Query(p.aggregate)))
	s.Handle(http.MethodPost, "/control", api.Body(p.control))
	s.Handle(http.MethodPost, "/devices/actuate", api.Body(p.actuateBatch))
	s.Get("/stats", func(ctx context.Context, q url.Values) (any, error) {
		return p.Stats(), nil
	})
	p.streamS.Mount(s)
	return s
}

// Handler returns the web-service layer.
func (p *Proxy) Handler() http.Handler { return p.apiS.Handler() }

func (p *Proxy) info(ctx context.Context, q url.Values) (any, error) {
	p.mu.Lock()
	battery := p.battery
	p.mu.Unlock()
	info := dataformat.DeviceInfo{
		URI:      p.opts.DeviceURI,
		Name:     p.opts.Name,
		Protocol: p.opts.Driver.Protocol(),
		Model:    p.opts.Model,
		Senses:   p.opts.Senses,
		Actuates: p.opts.Actuates,
		Location: p.opts.Location,
		ProxyURI: "http://" + p.srv.Addr() + "/",
	}
	if battery >= 0 {
		info.BatteryPC = battery
	}
	return dataformat.NewDeviceInfoDoc(info), nil
}

// parseRange reads from/to as RFC 3339 timestamps; both optional.
func parseRange(q url.Values) (from, to time.Time, err error) {
	if s := q.Get("from"); s != "" {
		if from, err = time.Parse(time.RFC3339, s); err != nil {
			return from, to, fmt.Errorf("bad from: %v", err)
		}
	}
	if s := q.Get("to"); s != "" {
		if to, err = time.Parse(time.RFC3339, s); err != nil {
			return from, to, fmt.Errorf("bad to: %v", err)
		}
	}
	return from, to, nil
}

// measurement rehydrates one stored sample into the common format.
func (p *Proxy) measurement(quantity string, smp tsdb.Sample) dataformat.Measurement {
	unit, _ := dataformat.CanonicalUnit(dataformat.Quantity(quantity))
	return dataformat.Measurement{
		Source:    "http://" + p.srv.Addr() + "/",
		Device:    p.opts.DeviceURI,
		Protocol:  p.opts.Driver.Protocol(),
		Quantity:  dataformat.Quantity(quantity),
		Unit:      unit,
		Value:     smp.Value,
		Timestamp: smp.At,
		Location:  p.opts.Location,
	}
}

func (p *Proxy) data(ctx context.Context, q url.Values) (any, error) {
	quantity := q.Get("quantity")
	if quantity == "" {
		return nil, api.BadRequest(errors.New("missing quantity parameter"))
	}
	from, to, err := parseRange(q)
	if err != nil {
		return nil, api.BadRequest(err)
	}
	key := tsdb.SeriesKey{Device: p.opts.DeviceURI, Quantity: quantity}
	samples, err := p.store.Query(key, from, to)
	if err != nil {
		return nil, err // tsdb sentinels map through the shared table
	}
	ms := make([]dataformat.Measurement, len(samples))
	for i, smp := range samples {
		ms[i] = p.measurement(quantity, smp)
	}
	return dataformat.NewMeasurementsDoc(ms), nil
}

func (p *Proxy) latest(ctx context.Context, q url.Values) (any, error) {
	quantity := q.Get("quantity")
	if quantity == "" {
		return nil, api.BadRequest(errors.New("missing quantity parameter"))
	}
	key := tsdb.SeriesKey{Device: p.opts.DeviceURI, Quantity: quantity}
	smp, err := p.store.Latest(key)
	if err != nil {
		return nil, api.NotFound(err)
	}
	return dataformat.NewMeasurementDoc(p.measurement(quantity, smp)), nil
}

// aggregate serves downsampled buckets of the local buffer:
// GET /aggregate?quantity=...&window=1m[&from=&to=]. Visualization
// front-ends use this to draw trends without pulling raw samples.
func (p *Proxy) aggregate(ctx context.Context, q url.Values) (any, error) {
	quantity := q.Get("quantity")
	if quantity == "" {
		return nil, api.BadRequest(errors.New("missing quantity parameter"))
	}
	window, err := time.ParseDuration(q.Get("window"))
	if err != nil {
		return nil, api.BadRequest(fmt.Errorf("bad window: %v", err))
	}
	from, to, err := parseRange(q)
	if err != nil {
		return nil, api.BadRequest(err)
	}
	key := tsdb.SeriesKey{Device: p.opts.DeviceURI, Quantity: quantity}
	buckets, err := p.store.Downsample(key, from, to, window)
	if err != nil {
		if errors.Is(err, tsdb.ErrNoSeries) {
			return nil, err
		}
		return nil, api.BadRequest(err)
	}
	return buckets, nil
}

// ControlRequest is the POST /control body (and one element of a batch).
type ControlRequest struct {
	Quantity dataformat.Quantity `json:"quantity"`
	Value    float64             `json:"value"`
}

// BatchRequest is the POST /devices/actuate body: many actuation
// commands applied in one round trip.
type BatchRequest struct {
	Commands []ControlRequest `json:"commands"`
}

// BatchResponse reports the per-command outcomes in request order, plus
// how many applied.
type BatchResponse struct {
	Applied int                        `json:"applied"`
	Results []dataformat.ControlResult `json:"results"`
}

// actuateBatch pushes every command of a batch to the driver. Failures
// don't abort the batch: each command reports its own outcome, the way
// a demand-response controller shedding many loads wants it.
func (p *Proxy) actuateBatch(ctx context.Context, req BatchRequest) (any, error) {
	if len(req.Commands) == 0 {
		return nil, api.BadRequest(errors.New("empty command batch"))
	}
	out := BatchResponse{Results: make([]dataformat.ControlResult, 0, len(req.Commands))}
	for _, cmd := range req.Commands {
		if cmd.Quantity == "" {
			return nil, api.BadRequest(errors.New("batch command missing quantity"))
		}
		result := dataformat.ControlResult{
			Device:   p.opts.DeviceURI,
			Quantity: cmd.Quantity,
			Value:    cmd.Value,
			At:       time.Now().UTC(),
		}
		if err := p.opts.Driver.Actuate(cmd.Quantity, cmd.Value); err != nil {
			result.Error = err.Error()
		} else {
			result.Applied = true
			out.Applied++
			p.stats.Lock()
			p.stats.controls++
			p.stats.Unlock()
		}
		out.Results = append(out.Results, result)
	}
	return out, nil
}

// control pushes an actuation command to the driver and reports the
// outcome as a control-result document.
func (p *Proxy) control(ctx context.Context, req ControlRequest) (any, error) {
	if req.Quantity == "" {
		return nil, api.BadRequest(errors.New("missing quantity"))
	}
	result := dataformat.ControlResult{
		Device:   p.opts.DeviceURI,
		Quantity: req.Quantity,
		Value:    req.Value,
		At:       time.Now().UTC(),
	}
	if err := p.opts.Driver.Actuate(req.Quantity, req.Value); err != nil {
		result.Applied = false
		result.Error = err.Error()
	} else {
		result.Applied = true
		p.stats.Lock()
		p.stats.controls++
		p.stats.Unlock()
	}
	return dataformat.NewControlResultDoc(result), nil
}
