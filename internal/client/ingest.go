package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/measuredb"
)

// Ingest is the measurements-database write sub-client, bound to one
// service base URL. It speaks the /v2 ingest data plane: batched JSON
// appends, single-series PUTs, a size/interval auto-flushing batch
// builder for steady producers (device proxies, load generators), and a
// row-at-a-time NDJSON streaming writer for bulk backfills.
//
// Every delivery carries an Idempotency-Key — caller-supplied or minted
// per batch — so the transport's retries can replay a timed-out request
// without double-appending its rows.
type Ingest struct {
	c    *Client
	base string
}

// Ingest returns the write sub-client for the measurements database at
// baseURL.
func (c *Client) Ingest(baseURL string) *Ingest {
	return &Ingest{c: c, base: baseURL}
}

// IngestOption tunes one ingest delivery.
type IngestOption func(*ingestOpts)

type ingestOpts struct {
	idempotencyKey string
}

// WithIdempotencyKey pins the delivery's Idempotency-Key (default: a
// fresh key per call, which still protects transport-level retries).
func WithIdempotencyKey(key string) IngestOption {
	return func(o *ingestOpts) { o.idempotencyKey = key }
}

func applyIngestOpts(opts []IngestOption) ingestOpts {
	o := ingestOpts{idempotencyKey: api.NewRequestID()}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// post delivers one JSON write and decodes the summary envelope.
func (g *Ingest) post(ctx context.Context, method, u string, in any, o ingestOpts) (*measuredb.IngestResult, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, err
	}
	h := http.Header{
		"Accept":       {"application/json"},
		"Content-Type": {"application/json"},
	}
	if o.idempotencyKey != "" {
		h.Set("Idempotency-Key", o.idempotencyKey)
	}
	raw, _, err := g.c.transport().Do(ctx, method, u, h, body)
	if err != nil {
		return nil, err
	}
	var out measuredb.IngestResult
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Append delivers one batch of self-contained rows (device and quantity
// on each row) to POST /v2/ingest, returning the per-row summary.
func (g *Ingest) Append(ctx context.Context, rows []measuredb.Point, opts ...IngestOption) (*measuredb.IngestResult, error) {
	if len(rows) == 0 {
		return &measuredb.IngestResult{}, nil
	}
	o := applyIngestOpts(opts)
	return g.post(ctx, http.MethodPost, api.URL2(g.base, "/ingest"), measuredb.IngestBatch{Rows: rows}, o)
}

// AppendSeries appends samples to one series through
// PUT /v2/series/{device}/{quantity}/samples; sample rows need only
// at/value.
func (g *Ingest) AppendSeries(ctx context.Context, device, quantity string, samples []measuredb.Point, opts ...IngestOption) (*measuredb.IngestResult, error) {
	if len(samples) == 0 {
		return &measuredb.IngestResult{}, nil
	}
	o := applyIngestOpts(opts)
	u := api.URL2(g.base, "/series/"+url.PathEscape(device)+"/"+url.PathEscape(quantity)+"/samples")
	return g.post(ctx, http.MethodPut, u, measuredb.SeriesAppend{Samples: samples}, o)
}

// ---------------------------------------------------------------------
// Auto-flushing batch builder
// ---------------------------------------------------------------------

// BatcherOptions tune a Batcher.
type BatcherOptions struct {
	// MaxRows flushes when the pending batch reaches this size
	// (default 256).
	MaxRows int
	// FlushEvery flushes a non-empty pending batch on this interval,
	// bounding staleness for slow producers (default 1s; negative
	// disables the timer — size-only flushing).
	FlushEvery time.Duration
	// FlushTimeout bounds one delivery (default 10s).
	FlushTimeout time.Duration
	// OnError observes failed deliveries (nil: drop silently). The rows
	// of a failed delivery are dropped, not retried — the transport
	// already retried transient failures under the batch's
	// idempotency key.
	OnError func(error)
	// OnResult observes each delivery's summary (nil: ignored).
	OnResult func(*measuredb.IngestResult)
}

// Batcher coalesces single samples into /v2/ingest batches, flushing on
// size or interval — the producer-side replacement for the
// one-event-per-sample bus hop. Most Adds only stage the row under a
// lock; the Add that fills the batch to MaxRows delivers it inline
// (bounded by FlushTimeout), which is the batcher's backpressure: a
// producer outrunning the database slows to the delivery rate instead
// of buffering without bound.
type Batcher struct {
	g    *Ingest
	opts BatcherOptions

	mu     sync.Mutex
	buf    []measuredb.Point
	closed bool

	stop chan struct{}
	done chan struct{}
}

// Batcher builds an auto-flushing batch writer over this sub-client.
func (g *Ingest) Batcher(opts BatcherOptions) *Batcher {
	if opts.MaxRows <= 0 {
		opts.MaxRows = 256
	}
	if opts.FlushEvery == 0 {
		opts.FlushEvery = time.Second
	}
	if opts.FlushTimeout <= 0 {
		opts.FlushTimeout = 10 * time.Second
	}
	b := &Batcher{
		g:    g,
		opts: opts,
		buf:  make([]measuredb.Point, 0, opts.MaxRows),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.loop()
	return b
}

// loop drives the interval flushes.
func (b *Batcher) loop() {
	defer close(b.done)
	if b.opts.FlushEvery < 0 {
		<-b.stop
		return
	}
	ticker := time.NewTicker(b.opts.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			b.flush(b.take(0))
		case <-b.stop:
			return
		}
	}
}

// take removes and returns the pending rows when they number at least
// threshold (0 takes any).
func (b *Batcher) take(threshold int) []measuredb.Point {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.buf) == 0 || len(b.buf) < threshold {
		return nil
	}
	rows := b.buf
	b.buf = make([]measuredb.Point, 0, b.opts.MaxRows)
	return rows
}

// flush delivers one taken batch.
func (b *Batcher) flush(rows []measuredb.Point) {
	if len(rows) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), b.opts.FlushTimeout)
	defer cancel()
	res, err := b.g.Append(ctx, rows)
	if err != nil {
		if b.opts.OnError != nil {
			b.opts.OnError(err)
		}
		return
	}
	if b.opts.OnResult != nil {
		b.opts.OnResult(res)
	}
}

// ErrBatcherClosed is returned by Add after Close.
var ErrBatcherClosed = errors.New("client: ingest batcher closed")

// Add stages one row, flushing inline when the size threshold fires.
func (b *Batcher) Add(p measuredb.Point) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBatcherClosed
	}
	b.buf = append(b.buf, p)
	b.mu.Unlock()
	b.flush(b.take(b.opts.MaxRows))
	return nil
}

// Flush delivers any pending rows now.
func (b *Batcher) Flush() { b.flush(b.take(0)) }

// Close stops the interval goroutine and delivers the pending tail.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
	b.flush(b.take(0))
}

// ---------------------------------------------------------------------
// NDJSON streaming writer
// ---------------------------------------------------------------------

// IngestStream is a row-at-a-time NDJSON write: rows cross the wire as
// they are written (chunked transfer), neither end materializes the
// batch, and Close returns the server's per-row summary.
type IngestStream struct {
	pw     *io.PipeWriter
	enc    *json.Encoder
	result chan streamResult
	closed bool
}

type streamResult struct {
	res *measuredb.IngestResult
	err error
}

// Stream opens an NDJSON streaming write to POST /v2/ingest. Write rows
// with Write, then Close to finish the request and read the summary.
func (g *Ingest) Stream(ctx context.Context, opts ...IngestOption) (*IngestStream, error) {
	o := applyIngestOpts(opts)
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, api.URL2(g.base, "/ingest"), pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", measuredb.NDJSONType)
	req.Header.Set("Accept", "application/json")
	if o.idempotencyKey != "" {
		req.Header.Set("Idempotency-Key", o.idempotencyKey)
	}
	// Like the read-side Stream: reuse a caller transport for pooling but
	// never its whole-request timeout, which would cut a long upload.
	hc := streamHTTPClient
	if g.c.HTTP != nil {
		hc = &http.Client{Transport: g.c.HTTP.Transport, Jar: g.c.HTTP.Jar}
	}
	st := &IngestStream{pw: pw, enc: json.NewEncoder(pw), result: make(chan streamResult, 1)}
	go func() {
		rsp, err := hc.Do(req)
		if err != nil {
			pr.CloseWithError(err) // unblock a writer mid-Write
			st.result <- streamResult{err: err}
			return
		}
		defer rsp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(rsp.Body, 1<<20))
		if rsp.StatusCode != http.StatusOK {
			st.result <- streamResult{err: &api.StatusError{
				Method: http.MethodPost, URL: req.URL.String(),
				Status: rsp.StatusCode, Body: strings.TrimSpace(string(raw)),
			}}
			return
		}
		var res measuredb.IngestResult
		if err := json.Unmarshal(raw, &res); err != nil {
			st.result <- streamResult{err: err}
			return
		}
		st.result <- streamResult{res: &res}
	}()
	return st, nil
}

// Write ships one row.
func (s *IngestStream) Write(p measuredb.Point) error { return s.enc.Encode(p) }

// Close finishes the upload and returns the server's summary envelope.
func (s *IngestStream) Close() (*measuredb.IngestResult, error) {
	if s.closed {
		return nil, fmt.Errorf("client: ingest stream closed twice")
	}
	s.closed = true
	if err := s.pw.Close(); err != nil {
		return nil, err
	}
	r := <-s.result
	return r.res, r.err
}

// Abort cancels the upload without a summary (e.g. the producer failed
// mid-stream); the server keeps the rows already received.
func (s *IngestStream) Abort(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.pw.CloseWithError(err)
	<-s.result
}
