// Package client is the end-user application library: the consumer side
// of the paper's architecture. It queries the master node for an area,
// receives the proxies' web-service URIs, fetches each proxy's
// translated model and data directly (the master redirects, it does not
// aggregate), and integrates everything into a comprehensive AreaModel
// via the integration engine.
//
// All methods take a context.Context, speak the versioned /v1 API, and
// ride the shared retrying transport (internal/api): transient failures
// back off exponentially with jitter, and concurrent proxy fetches
// reuse pooled keep-alive connections under the configured concurrency
// bound.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/integration"
	"repro/internal/master"
	"repro/internal/middleware"
	"repro/internal/ontology"
	"repro/internal/stream"
)

// Client talks to one master node and the proxies it redirects to.
type Client struct {
	// MasterURL is the master node's base URL.
	MasterURL string
	// HTTP overrides the transport's pooled HTTP client.
	HTTP *http.Client
	// Encoding selects the preferred proxy encoding (default JSON).
	Encoding dataformat.Encoding
	// Concurrency bounds parallel proxy fetches (default 8).
	Concurrency int
	// MaxAttempts bounds tries per request (default 3; 1 disables
	// retries). BaseDelay/MaxDelay tune the backoff.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration

	trOnce sync.Once
	tr     *api.Transport
}

// Area is a bounding box for area queries; the zero Area means the
// whole district.
type Area struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Empty reports whether the area is the whole-district marker.
func (a Area) Empty() bool { return a == Area{} }

// Errors returned by the client.
var ErrMaster = errors.New("client: master request failed")

// transport lazily builds the shared typed transport.
func (c *Client) transport() *api.Transport {
	c.trOnce.Do(func() {
		c.tr = &api.Transport{
			Client:      c.HTTP,
			MaxAttempts: c.MaxAttempts,
			BaseDelay:   c.BaseDelay,
			MaxDelay:    c.MaxDelay,
		}
	})
	return c.tr
}

func (c *Client) enc() dataformat.Encoding {
	if c.Encoding == "" {
		return dataformat.JSON
	}
	return c.Encoding
}

// masterURL builds a versioned master endpoint URL.
func (c *Client) masterURL(pathAndQuery string) string {
	return api.URL(c.MasterURL, pathAndQuery)
}

// getJSON fetches a master JSON endpoint into v.
func (c *Client) getJSON(ctx context.Context, rawURL string, v any) error {
	if err := c.transport().GetJSON(ctx, rawURL, v); err != nil {
		var se *api.StatusError
		if errors.As(err, &se) {
			return fmt.Errorf("%w: %s: %d %s", ErrMaster, se.URL, se.Status, se.Body)
		}
		return fmt.Errorf("%w: %v", ErrMaster, err)
	}
	return nil
}

// Query asks the master node for the entities of an area and their
// proxy URIs — the redirection step of the paper's flow.
func (c *Client) Query(ctx context.Context, district string, area Area) (*master.QueryResponse, error) {
	u := c.masterURL("/query") + "?district=" + url.QueryEscape(district)
	if !area.Empty() {
		u += fmt.Sprintf("&minLat=%g&minLon=%g&maxLat=%g&maxLon=%g",
			area.MinLat, area.MinLon, area.MaxLat, area.MaxLon)
	}
	var out master.QueryResponse
	if err := c.getJSON(ctx, u, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Devices asks the master node for the device leaves of an entity.
func (c *Client) Devices(ctx context.Context, entityURI string) ([]ontology.Resolution, error) {
	var out []ontology.Resolution
	err := c.getJSON(ctx, c.masterURL("/devices")+"?entity="+url.QueryEscape(entityURI), &out)
	return out, err
}

// FetchModel retrieves a proxy's translated model document.
func (c *Client) FetchModel(ctx context.Context, proxyURI string) (*dataformat.Entity, error) {
	doc, err := c.transport().GetDoc(ctx, joinURL(proxyURI, "model"), c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Entity == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want entity", proxyURI, doc.Kind)
	}
	return doc.Entity, nil
}

// FetchGISFeatures retrieves the GIS features of an area.
func (c *Client) FetchGISFeatures(ctx context.Context, gisURI string, area Area) ([]dataformat.Entity, error) {
	u := joinURL(gisURI, "features")
	if area.Empty() {
		// The GIS proxy requires a box; ask for the whole world.
		area = Area{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	}
	u += fmt.Sprintf("?minLat=%g&minLon=%g&maxLat=%g&maxLon=%g",
		area.MinLat, area.MinLon, area.MaxLat, area.MaxLon)
	doc, err := c.transport().GetDoc(ctx, u, c.enc())
	if err != nil {
		return nil, err
	}
	return doc.Entities, nil
}

// FetchDeviceInfo retrieves a device proxy's description document.
func (c *Client) FetchDeviceInfo(ctx context.Context, proxyURI string) (*dataformat.DeviceInfo, error) {
	doc, err := c.transport().GetDoc(ctx, joinURL(proxyURI, "info"), c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Device == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want device-info", proxyURI, doc.Kind)
	}
	return doc.Device, nil
}

// FetchLatest retrieves a device proxy's freshest sample of a quantity.
func (c *Client) FetchLatest(ctx context.Context, proxyURI string, q dataformat.Quantity) (*dataformat.Measurement, error) {
	u := joinURL(proxyURI, "latest") + "?quantity=" + url.QueryEscape(string(q))
	doc, err := c.transport().GetDoc(ctx, u, c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Measurement == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want measurement", proxyURI, doc.Kind)
	}
	return doc.Measurement, nil
}

// FetchData retrieves a device proxy's buffered samples of a quantity.
func (c *Client) FetchData(ctx context.Context, proxyURI string, q dataformat.Quantity, from, to time.Time) ([]dataformat.Measurement, error) {
	u := joinURL(proxyURI, "data") + "?quantity=" + url.QueryEscape(string(q))
	if !from.IsZero() {
		u += "&from=" + url.QueryEscape(from.Format(time.RFC3339))
	}
	if !to.IsZero() {
		u += "&to=" + url.QueryEscape(to.Format(time.RFC3339))
	}
	doc, err := c.transport().GetDoc(ctx, u, c.enc())
	if err != nil {
		return nil, err
	}
	return doc.Measurements, nil
}

// Control issues an actuation command through a device proxy. Controls
// are not idempotent, so this path never retries: one attempt, pass or
// fail.
func (c *Client) Control(ctx context.Context, proxyURI string, q dataformat.Quantity, value float64) (*dataformat.ControlResult, error) {
	body, err := json.Marshal(map[string]any{"quantity": q, "value": value})
	if err != nil {
		return nil, err
	}
	tr := &api.Transport{Client: c.HTTP, MaxAttempts: 1}
	h := http.Header{
		"Content-Type": {"application/json"},
		"Accept":       {c.enc().ContentType()},
	}
	raw, rsp, err := tr.Do(ctx, http.MethodPost, joinURL(proxyURI, "control"), h, body)
	if err != nil {
		return nil, err
	}
	ct, _, _ := strings.Cut(rsp.Header.Get("Content-Type"), ";")
	doc, err := dataformat.Decode(raw, dataformat.ParseEncoding(strings.TrimSpace(ct)))
	if err != nil {
		return nil, err
	}
	if doc.Control == nil {
		return nil, fmt.Errorf("client: control returned a %q document", doc.Kind)
	}
	return doc.Control, nil
}

// ControlBatch issues many actuation commands to one device proxy in a
// single round trip (POST /v1/devices/actuate). Like Control, the path
// never retries: actuation is not idempotent.
func (c *Client) ControlBatch(ctx context.Context, proxyURI string, cmds []deviceproxy.ControlRequest) (*deviceproxy.BatchResponse, error) {
	if len(cmds) == 0 {
		return nil, errors.New("client: empty command batch")
	}
	tr := &api.Transport{Client: c.HTTP, MaxAttempts: 1}
	var out deviceproxy.BatchResponse
	err := tr.PostJSON(ctx, joinURL(proxyURI, "devices/actuate"),
		deviceproxy.BatchRequest{Commands: cmds}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Subscribe opens a live subscription to the master node's event stream
// (registry lifecycle topics) for a topic pattern. The subscription
// reconnects automatically and resumes with Last-Event-ID, so consumers
// see each event at most once with no gaps across a reconnect.
func (c *Client) Subscribe(ctx context.Context, pattern string) (*stream.Subscription, error) {
	return stream.Subscribe(ctx, c.MasterURL, pattern, stream.SubscribeOptions{})
}

// SubscribeService opens a live subscription to any streaming service of
// the infrastructure (measurements database, a device proxy) by its base
// URL — the redirection pattern of the paper applied to live data: the
// master's query response carries the URIs, the client subscribes to the
// source directly.
func (c *Client) SubscribeService(ctx context.Context, serviceURL, pattern string) (*stream.Subscription, error) {
	return stream.Subscribe(ctx, serviceURL, pattern, stream.SubscribeOptions{})
}

// PublishEvent injects one event into a remote service's bus through its
// /v1/publish ingress. Like Control, it never retries: injection is not
// idempotent, and a retry after a lost response would duplicate the
// event in every downstream store.
func (c *Client) PublishEvent(ctx context.Context, serviceURL string, ev middleware.Event) error {
	tr := &api.Transport{Client: c.HTTP, MaxAttempts: 1}
	return tr.PostJSON(ctx, api.URL(serviceURL, "/publish"), ev, nil)
}

// BuildOptions tune BuildAreaModel.
type BuildOptions struct {
	// IncludeDevices fetches each entity's device list and the latest
	// sample of every sensed quantity from the device proxies.
	IncludeDevices bool
	// History, when positive, additionally fetches each device's
	// buffered samples over the trailing window.
	History time.Duration
	// IncludeGIS fetches the district GIS features for the area.
	IncludeGIS bool
}

// BuildAreaModel runs the full end-user flow of the paper: master query
// → parallel proxy fetches → integration into a comprehensive model.
// Cancelling ctx aborts in-flight fetches and backoff sleeps.
func (c *Client) BuildAreaModel(ctx context.Context, district string, area Area, opts BuildOptions) (*integration.AreaModel, error) {
	qr, err := c.Query(ctx, district, area)
	if err != nil {
		return nil, err
	}
	merger := integration.NewMerger(district)
	conc := c.Concurrency
	if conc <= 0 {
		conc = 8
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	for _, res := range qr.Entities {
		if res.ProxyURI == "" {
			continue // entity not yet served by any proxy
		}
		if ctx.Err() != nil {
			fail(ctx.Err())
			break
		}
		res := res
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			model, err := c.FetchModel(ctx, res.ProxyURI)
			if err != nil {
				fail(fmt.Errorf("model of %s: %w", res.URI, err))
				return
			}
			merger.AddEntity(res.ProxyURI, *model)
			if opts.IncludeDevices {
				c.fetchDevices(ctx, merger, res.URI, opts, fail)
			}
		}()
	}
	if opts.IncludeGIS && qr.GISURI != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			features, err := c.FetchGISFeatures(ctx, qr.GISURI, area)
			if err != nil {
				fail(fmt.Errorf("gis features: %w", err))
				return
			}
			for _, f := range features {
				merger.AddEntity(qr.GISURI, f)
			}
		}()
	}
	wg.Wait()
	model := merger.Result()
	if len(errs) > 0 {
		return model, errors.Join(errs...)
	}
	return model, nil
}

// fetchDevices pulls device info + data for one entity's devices.
func (c *Client) fetchDevices(ctx context.Context, merger *integration.Merger, entityURI string, opts BuildOptions, fail func(error)) {
	devices, err := c.Devices(ctx, entityURI)
	if err != nil {
		fail(fmt.Errorf("devices of %s: %w", entityURI, err))
		return
	}
	for _, d := range devices {
		if d.ProxyURI == "" {
			continue
		}
		if ctx.Err() != nil {
			fail(ctx.Err())
			return
		}
		info, err := c.FetchDeviceInfo(ctx, d.ProxyURI)
		if err != nil {
			fail(fmt.Errorf("info of %s: %w", d.URI, err))
			continue
		}
		e := dataformat.Entity{URI: d.URI, Kind: dataformat.EntityDevice, Name: info.Name}
		e.SetProp("protocol", info.Protocol, "string")
		e.SetProp("proxy.uri", d.ProxyURI, "uri")
		merger.AddEntity(d.ProxyURI, e)
		for _, q := range info.Senses {
			if opts.History > 0 {
				ms, err := c.FetchData(ctx, d.ProxyURI, q, time.Now().Add(-opts.History), time.Time{})
				if err == nil {
					merger.AddMeasurements(d.ProxyURI, ms)
					continue
				}
			}
			m, err := c.FetchLatest(ctx, d.ProxyURI, q)
			if err != nil {
				continue // no sample yet is not an integration failure
			}
			merger.AddMeasurements(d.ProxyURI, []dataformat.Measurement{*m})
		}
	}
}

// joinURL appends a versioned path segment to a proxy base URL that may
// or may not end with a slash.
func joinURL(base, path string) string {
	return api.URL(base, path)
}
