// Package client is the end-user application library: the consumer side
// of the paper's architecture. It queries the master node for an area,
// receives the proxies' web-service URIs, fetches each proxy's
// translated model and data directly (the master redirects, it does not
// aggregate), and integrates everything into a comprehensive AreaModel
// via the integration engine.
//
// The library is organised as typed sub-clients over one shared
// transport, mirroring the service surfaces:
//
//	c.Catalog()                  master node: area queries, device
//	                             resolution, ontology, registrations
//	c.Measurements(baseURL)      measurements DB /v2 query data plane:
//	                             batch query, cursor pages, auto-
//	                             depaginating iterator, NDJSON streaming
//	c.Ingest(baseURL)            measurements DB /v2 ingest data plane:
//	                             batched appends, auto-flushing batch
//	                             builder, NDJSON streaming writer,
//	                             idempotent retries
//	c.Devices()                  device proxies: info/latest/data reads
//	                             and (batch) actuation
//	c.Streams()                  live SSE subscriptions + publish ingress
//	c.Ops(baseURL)               any service's ops surface: metrics
//	                             snapshots and retained trace spans
//
// All methods take a context.Context, speak the versioned /v1 and /v2
// APIs, and ride the shared retrying transport (internal/api):
// transient failures back off exponentially with jitter, and concurrent
// proxy fetches reuse pooled keep-alive connections under the
// configured concurrency bound.
//
// The pre-redesign monolithic methods survive as thin deprecated
// forwarders, except Devices(ctx, entity) — its name now returns the
// device sub-client; use Catalog().Devices instead.
package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
	"repro/internal/integration"
	"repro/internal/master"
	"repro/internal/middleware"
	"repro/internal/stream"
)

// Client talks to one master node and the proxies it redirects to. It
// is the root of the sub-client family; the sub-clients share its
// transport, encoding, and retry configuration.
type Client struct {
	// MasterURL is the master node's base URL.
	MasterURL string
	// HTTP overrides the transport's pooled HTTP client.
	HTTP *http.Client
	// Encoding selects the preferred proxy encoding (default JSON).
	Encoding dataformat.Encoding
	// Concurrency bounds parallel proxy fetches (default 8).
	Concurrency int
	// MaxAttempts bounds tries per request (default 3; 1 disables
	// retries). BaseDelay/MaxDelay tune the backoff.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration

	trOnce sync.Once
	tr     *api.Transport
}

// Area is a bounding box for area queries; the zero Area means the
// whole district.
type Area struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Empty reports whether the area is the whole-district marker.
func (a Area) Empty() bool { return a == Area{} }

// Errors returned by the client.
var ErrMaster = errors.New("client: master request failed")

// transport lazily builds the shared typed transport.
func (c *Client) transport() *api.Transport {
	c.trOnce.Do(func() {
		c.tr = &api.Transport{
			Client:      c.HTTP,
			MaxAttempts: c.MaxAttempts,
			BaseDelay:   c.BaseDelay,
			MaxDelay:    c.MaxDelay,
		}
	})
	return c.tr
}

func (c *Client) enc() dataformat.Encoding {
	if c.Encoding == "" {
		return dataformat.JSON
	}
	return c.Encoding
}

// masterURL builds a versioned master endpoint URL.
func (c *Client) masterURL(pathAndQuery string) string {
	return api.URL(c.MasterURL, pathAndQuery)
}

// getJSON fetches a master JSON endpoint into v.
func (c *Client) getJSON(ctx context.Context, rawURL string, v any) error {
	if err := c.transport().GetJSON(ctx, rawURL, v); err != nil {
		var se *api.StatusError
		if errors.As(err, &se) {
			return fmt.Errorf("%w: %s: %d %s", ErrMaster, se.URL, se.Status, se.Body)
		}
		return fmt.Errorf("%w: %v", ErrMaster, err)
	}
	return nil
}

// FetchModel retrieves a Database-proxy's translated model document
// (BIM building, SIM network).
func (c *Client) FetchModel(ctx context.Context, proxyURI string) (*dataformat.Entity, error) {
	doc, err := c.transport().GetDoc(ctx, joinURL(proxyURI, "model"), c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Entity == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want entity", proxyURI, doc.Kind)
	}
	return doc.Entity, nil
}

// FetchGISFeatures retrieves the GIS features of an area.
func (c *Client) FetchGISFeatures(ctx context.Context, gisURI string, area Area) ([]dataformat.Entity, error) {
	u := joinURL(gisURI, "features")
	if area.Empty() {
		// The GIS proxy requires a box; ask for the whole world.
		area = Area{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	}
	u += fmt.Sprintf("?minLat=%g&minLon=%g&maxLat=%g&maxLon=%g",
		area.MinLat, area.MinLon, area.MaxLat, area.MaxLon)
	doc, err := c.transport().GetDoc(ctx, u, c.enc())
	if err != nil {
		return nil, err
	}
	return doc.Entities, nil
}

// ---------------------------------------------------------------------
// Deprecated monolithic surface: thin forwarders onto the sub-clients,
// kept so pre-redesign consumers keep compiling during the migration.
// ---------------------------------------------------------------------

// Query asks the master node for the entities of an area.
//
// Deprecated: use Catalog().Query.
func (c *Client) Query(ctx context.Context, district string, area Area) (*master.QueryResponse, error) {
	return c.Catalog().Query(ctx, district, area)
}

// FetchDeviceInfo retrieves a device proxy's description document.
//
// Deprecated: use Devices().Info.
func (c *Client) FetchDeviceInfo(ctx context.Context, proxyURI string) (*dataformat.DeviceInfo, error) {
	return c.Devices().Info(ctx, proxyURI)
}

// FetchLatest retrieves a device proxy's freshest sample of a quantity.
//
// Deprecated: use Devices().Latest.
func (c *Client) FetchLatest(ctx context.Context, proxyURI string, q dataformat.Quantity) (*dataformat.Measurement, error) {
	return c.Devices().Latest(ctx, proxyURI, q)
}

// FetchData retrieves a device proxy's buffered samples of a quantity.
//
// Deprecated: use Devices().Data.
func (c *Client) FetchData(ctx context.Context, proxyURI string, q dataformat.Quantity, from, to time.Time) ([]dataformat.Measurement, error) {
	return c.Devices().Data(ctx, proxyURI, q, from, to)
}

// Control issues an actuation command through a device proxy.
//
// Deprecated: use Devices().Control.
func (c *Client) Control(ctx context.Context, proxyURI string, q dataformat.Quantity, value float64) (*dataformat.ControlResult, error) {
	return c.Devices().Control(ctx, proxyURI, q, value)
}

// ControlBatch issues many actuation commands in one round trip.
//
// Deprecated: use Devices().ControlBatch.
func (c *Client) ControlBatch(ctx context.Context, proxyURI string, cmds []deviceproxy.ControlRequest) (*deviceproxy.BatchResponse, error) {
	return c.Devices().ControlBatch(ctx, proxyURI, cmds)
}

// Subscribe opens a live subscription to the master node's stream.
//
// Deprecated: use Streams().Subscribe.
func (c *Client) Subscribe(ctx context.Context, pattern string) (*stream.Subscription, error) {
	return c.Streams().Subscribe(ctx, pattern)
}

// SubscribeService opens a live subscription to any streaming service.
//
// Deprecated: use Streams().SubscribeService.
func (c *Client) SubscribeService(ctx context.Context, serviceURL, pattern string) (*stream.Subscription, error) {
	return c.Streams().SubscribeService(ctx, serviceURL, pattern)
}

// PublishEvent injects one event into a remote service's bus. For
// measurement writes, the bus hop itself is the deprecated path: ship
// samples through Ingest(baseURL) — batched, idempotent, and stored
// without a re-decode — instead of publishing measurement documents.
//
// Deprecated: use Streams().Publish (or Ingest for measurement writes).
func (c *Client) PublishEvent(ctx context.Context, serviceURL string, ev middleware.Event) error {
	return c.Streams().Publish(ctx, serviceURL, ev)
}

// ---------------------------------------------------------------------
// Integration flow
// ---------------------------------------------------------------------

// BuildOptions tune BuildAreaModel.
type BuildOptions struct {
	// IncludeDevices fetches each entity's device list and the latest
	// sample of every sensed quantity from the device proxies.
	IncludeDevices bool
	// History, when positive, additionally fetches each device's
	// buffered samples over the trailing window.
	History time.Duration
	// IncludeGIS fetches the district GIS features for the area.
	IncludeGIS bool
}

// BuildAreaModel runs the full end-user flow of the paper: master query
// → parallel proxy fetches → integration into a comprehensive model.
// Cancelling ctx aborts in-flight fetches and backoff sleeps.
func (c *Client) BuildAreaModel(ctx context.Context, district string, area Area, opts BuildOptions) (*integration.AreaModel, error) {
	qr, err := c.Catalog().Query(ctx, district, area)
	if err != nil {
		return nil, err
	}
	merger := integration.NewMerger(district)
	conc := c.Concurrency
	if conc <= 0 {
		conc = 8
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	for _, res := range qr.Entities {
		if res.ProxyURI == "" {
			continue // entity not yet served by any proxy
		}
		if ctx.Err() != nil {
			fail(ctx.Err())
			break
		}
		res := res
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			model, err := c.FetchModel(ctx, res.ProxyURI)
			if err != nil {
				fail(fmt.Errorf("model of %s: %w", res.URI, err))
				return
			}
			merger.AddEntity(res.ProxyURI, *model)
			if opts.IncludeDevices {
				c.fetchDevices(ctx, merger, res.URI, opts, fail)
			}
		}()
	}
	if opts.IncludeGIS && qr.GISURI != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			features, err := c.FetchGISFeatures(ctx, qr.GISURI, area)
			if err != nil {
				fail(fmt.Errorf("gis features: %w", err))
				return
			}
			for _, f := range features {
				merger.AddEntity(qr.GISURI, f)
			}
		}()
	}
	wg.Wait()
	model := merger.Result()
	if len(errs) > 0 {
		return model, errors.Join(errs...)
	}
	return model, nil
}

// fetchDevices pulls device info + data for one entity's devices.
func (c *Client) fetchDevices(ctx context.Context, merger *integration.Merger, entityURI string, opts BuildOptions, fail func(error)) {
	devices, err := c.Catalog().Devices(ctx, entityURI)
	if err != nil {
		fail(fmt.Errorf("devices of %s: %w", entityURI, err))
		return
	}
	dc := c.Devices()
	for _, d := range devices {
		if d.ProxyURI == "" {
			continue
		}
		if ctx.Err() != nil {
			fail(ctx.Err())
			return
		}
		info, err := dc.Info(ctx, d.ProxyURI)
		if err != nil {
			fail(fmt.Errorf("info of %s: %w", d.URI, err))
			continue
		}
		e := dataformat.Entity{URI: d.URI, Kind: dataformat.EntityDevice, Name: info.Name}
		e.SetProp("protocol", info.Protocol, "string")
		e.SetProp("proxy.uri", d.ProxyURI, "uri")
		merger.AddEntity(d.ProxyURI, e)
		for _, q := range info.Senses {
			if opts.History > 0 {
				ms, err := dc.Data(ctx, d.ProxyURI, q, time.Now().Add(-opts.History), time.Time{})
				if err == nil {
					merger.AddMeasurements(d.ProxyURI, ms)
					continue
				}
			}
			m, err := dc.Latest(ctx, d.ProxyURI, q)
			if err != nil {
				continue // no sample yet is not an integration failure
			}
			merger.AddMeasurements(d.ProxyURI, []dataformat.Measurement{*m})
		}
	}
}
