// Package client is the end-user application library: the consumer side
// of the paper's architecture. It queries the master node for an area,
// receives the proxies' web-service URIs, fetches each proxy's
// translated model and data directly (the master redirects, it does not
// aggregate), and integrates everything into a comprehensive AreaModel
// via the integration engine.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/dataformat"
	"repro/internal/integration"
	"repro/internal/master"
	"repro/internal/ontology"
	"repro/internal/proxyhttp"
)

// Client talks to one master node and the proxies it redirects to.
type Client struct {
	// MasterURL is the master node's base URL.
	MasterURL string
	// HTTP is the transport; nil uses a 10-second-timeout default.
	HTTP *http.Client
	// Encoding selects the preferred proxy encoding (default JSON).
	Encoding dataformat.Encoding
	// Concurrency bounds parallel proxy fetches (default 8).
	Concurrency int
}

// Area is a bounding box for area queries; the zero Area means the
// whole district.
type Area struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Empty reports whether the area is the whole-district marker.
func (a Area) Empty() bool { return a == Area{} }

// Errors returned by the client.
var ErrMaster = errors.New("client: master request failed")

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) enc() dataformat.Encoding {
	if c.Encoding == "" {
		return dataformat.JSON
	}
	return c.Encoding
}

func (c *Client) masterURL(path string) string {
	return strings.TrimSuffix(c.MasterURL, "/") + path
}

// getJSON fetches a JSON endpoint into v.
func (c *Client) getJSON(rawURL string, v any) error {
	rsp, err := c.http().Get(rawURL)
	if err != nil {
		return err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(rsp.Body, 512))
		return fmt.Errorf("%w: %s: %d %s", ErrMaster, rawURL, rsp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(rsp.Body).Decode(v)
}

// Query asks the master node for the entities of an area and their
// proxy URIs — the redirection step of the paper's flow.
func (c *Client) Query(district string, area Area) (*master.QueryResponse, error) {
	u := c.masterURL("/query") + "?district=" + url.QueryEscape(district)
	if !area.Empty() {
		u += fmt.Sprintf("&minLat=%g&minLon=%g&maxLat=%g&maxLon=%g",
			area.MinLat, area.MinLon, area.MaxLat, area.MaxLon)
	}
	var out master.QueryResponse
	if err := c.getJSON(u, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Devices asks the master node for the device leaves of an entity.
func (c *Client) Devices(entityURI string) ([]ontology.Resolution, error) {
	var out []ontology.Resolution
	err := c.getJSON(c.masterURL("/devices")+"?entity="+url.QueryEscape(entityURI), &out)
	return out, err
}

// FetchModel retrieves a proxy's translated model document.
func (c *Client) FetchModel(proxyURI string) (*dataformat.Entity, error) {
	doc, err := proxyhttp.GetDoc(c.http(), joinURL(proxyURI, "model"), c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Entity == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want entity", proxyURI, doc.Kind)
	}
	return doc.Entity, nil
}

// FetchGISFeatures retrieves the GIS features of an area.
func (c *Client) FetchGISFeatures(gisURI string, area Area) ([]dataformat.Entity, error) {
	u := joinURL(gisURI, "features")
	if area.Empty() {
		// The GIS proxy requires a box; ask for the whole world.
		area = Area{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	}
	u += fmt.Sprintf("?minLat=%g&minLon=%g&maxLat=%g&maxLon=%g",
		area.MinLat, area.MinLon, area.MaxLat, area.MaxLon)
	doc, err := proxyhttp.GetDoc(c.http(), u, c.enc())
	if err != nil {
		return nil, err
	}
	return doc.Entities, nil
}

// FetchDeviceInfo retrieves a device proxy's description document.
func (c *Client) FetchDeviceInfo(proxyURI string) (*dataformat.DeviceInfo, error) {
	doc, err := proxyhttp.GetDoc(c.http(), joinURL(proxyURI, "info"), c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Device == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want device-info", proxyURI, doc.Kind)
	}
	return doc.Device, nil
}

// FetchLatest retrieves a device proxy's freshest sample of a quantity.
func (c *Client) FetchLatest(proxyURI string, q dataformat.Quantity) (*dataformat.Measurement, error) {
	u := joinURL(proxyURI, "latest") + "?quantity=" + url.QueryEscape(string(q))
	doc, err := proxyhttp.GetDoc(c.http(), u, c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Measurement == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want measurement", proxyURI, doc.Kind)
	}
	return doc.Measurement, nil
}

// FetchData retrieves a device proxy's buffered samples of a quantity.
func (c *Client) FetchData(proxyURI string, q dataformat.Quantity, from, to time.Time) ([]dataformat.Measurement, error) {
	u := joinURL(proxyURI, "data") + "?quantity=" + url.QueryEscape(string(q))
	if !from.IsZero() {
		u += "&from=" + url.QueryEscape(from.Format(time.RFC3339))
	}
	if !to.IsZero() {
		u += "&to=" + url.QueryEscape(to.Format(time.RFC3339))
	}
	doc, err := proxyhttp.GetDoc(c.http(), u, c.enc())
	if err != nil {
		return nil, err
	}
	return doc.Measurements, nil
}

// Control issues an actuation command through a device proxy.
func (c *Client) Control(proxyURI string, q dataformat.Quantity, value float64) (*dataformat.ControlResult, error) {
	body, err := json.Marshal(map[string]any{"quantity": q, "value": value})
	if err != nil {
		return nil, err
	}
	rsp, err := c.http().Post(joinURL(proxyURI, "control"), "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: control returned %d", rsp.StatusCode)
	}
	doc, err := dataformat.DecodeFrom(rsp.Body, dataformat.ParseEncoding(rsp.Header.Get("Content-Type")))
	if err != nil {
		return nil, err
	}
	if doc.Control == nil {
		return nil, fmt.Errorf("client: control returned a %q document", doc.Kind)
	}
	return doc.Control, nil
}

// BuildOptions tune BuildAreaModel.
type BuildOptions struct {
	// IncludeDevices fetches each entity's device list and the latest
	// sample of every sensed quantity from the device proxies.
	IncludeDevices bool
	// History, when positive, additionally fetches each device's
	// buffered samples over the trailing window.
	History time.Duration
	// IncludeGIS fetches the district GIS features for the area.
	IncludeGIS bool
}

// BuildAreaModel runs the full end-user flow of the paper: master query
// → parallel proxy fetches → integration into a comprehensive model.
func (c *Client) BuildAreaModel(district string, area Area, opts BuildOptions) (*integration.AreaModel, error) {
	qr, err := c.Query(district, area)
	if err != nil {
		return nil, err
	}
	merger := integration.NewMerger(district)
	conc := c.Concurrency
	if conc <= 0 {
		conc = 8
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	for _, res := range qr.Entities {
		if res.ProxyURI == "" {
			continue // entity not yet served by any proxy
		}
		res := res
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			model, err := c.FetchModel(res.ProxyURI)
			if err != nil {
				fail(fmt.Errorf("model of %s: %w", res.URI, err))
				return
			}
			merger.AddEntity(res.ProxyURI, *model)
			if opts.IncludeDevices {
				c.fetchDevices(merger, res.URI, opts, fail)
			}
		}()
	}
	if opts.IncludeGIS && qr.GISURI != "" {
		wg.Add(1)
		go func() {
			defer wg.Done()
			features, err := c.FetchGISFeatures(qr.GISURI, area)
			if err != nil {
				fail(fmt.Errorf("gis features: %w", err))
				return
			}
			for _, f := range features {
				merger.AddEntity(qr.GISURI, f)
			}
		}()
	}
	wg.Wait()
	model := merger.Result()
	if len(errs) > 0 {
		return model, errors.Join(errs...)
	}
	return model, nil
}

// fetchDevices pulls device info + data for one entity's devices.
func (c *Client) fetchDevices(merger *integration.Merger, entityURI string, opts BuildOptions, fail func(error)) {
	devices, err := c.Devices(entityURI)
	if err != nil {
		fail(fmt.Errorf("devices of %s: %w", entityURI, err))
		return
	}
	for _, d := range devices {
		if d.ProxyURI == "" {
			continue
		}
		info, err := c.FetchDeviceInfo(d.ProxyURI)
		if err != nil {
			fail(fmt.Errorf("info of %s: %w", d.URI, err))
			continue
		}
		e := dataformat.Entity{URI: d.URI, Kind: dataformat.EntityDevice, Name: info.Name}
		e.SetProp("protocol", info.Protocol, "string")
		e.SetProp("proxy.uri", d.ProxyURI, "uri")
		merger.AddEntity(d.ProxyURI, e)
		for _, q := range info.Senses {
			if opts.History > 0 {
				ms, err := c.FetchData(d.ProxyURI, q, time.Now().Add(-opts.History), time.Time{})
				if err == nil {
					merger.AddMeasurements(d.ProxyURI, ms)
					continue
				}
			}
			m, err := c.FetchLatest(d.ProxyURI, q)
			if err != nil {
				continue // no sample yet is not an integration failure
			}
			merger.AddMeasurements(d.ProxyURI, []dataformat.Measurement{*m})
		}
	}
}

// joinURL appends a path segment to a base URL that may or may not end
// with a slash.
func joinURL(base, path string) string {
	return strings.TrimSuffix(base, "/") + "/" + path
}
