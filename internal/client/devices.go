package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/deviceproxy"
)

// Devices is the device-proxy sub-client: per-device reads (info,
// latest, buffered history) and actuation against the proxy URIs the
// Catalog resolved. Reads retry on the shared transport; actuation
// never retries (it is not idempotent).
type Devices struct {
	c *Client
}

// Devices returns the device-proxy sub-client.
func (c *Client) Devices() *Devices { return &Devices{c: c} }

// Info retrieves a device proxy's description document.
func (d *Devices) Info(ctx context.Context, proxyURI string) (*dataformat.DeviceInfo, error) {
	doc, err := d.c.transport().GetDoc(ctx, joinURL(proxyURI, "info"), d.c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Device == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want device-info", proxyURI, doc.Kind)
	}
	return doc.Device, nil
}

// Latest retrieves a device proxy's freshest sample of a quantity.
func (d *Devices) Latest(ctx context.Context, proxyURI string, q dataformat.Quantity) (*dataformat.Measurement, error) {
	u := joinURL(proxyURI, "latest") + "?quantity=" + url.QueryEscape(string(q))
	doc, err := d.c.transport().GetDoc(ctx, u, d.c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Measurement == nil {
		return nil, fmt.Errorf("client: %s returned a %q document, want measurement", proxyURI, doc.Kind)
	}
	return doc.Measurement, nil
}

// Data retrieves a device proxy's buffered samples of a quantity.
func (d *Devices) Data(ctx context.Context, proxyURI string, q dataformat.Quantity, from, to time.Time) ([]dataformat.Measurement, error) {
	u := joinURL(proxyURI, "data") + "?quantity=" + url.QueryEscape(string(q))
	if !from.IsZero() {
		u += "&from=" + url.QueryEscape(from.Format(time.RFC3339))
	}
	if !to.IsZero() {
		u += "&to=" + url.QueryEscape(to.Format(time.RFC3339))
	}
	doc, err := d.c.transport().GetDoc(ctx, u, d.c.enc())
	if err != nil {
		return nil, err
	}
	return doc.Measurements, nil
}

// Control issues an actuation command through a device proxy. Controls
// are not idempotent, so this path never retries: one attempt, pass or
// fail.
func (d *Devices) Control(ctx context.Context, proxyURI string, q dataformat.Quantity, value float64) (*dataformat.ControlResult, error) {
	body, err := json.Marshal(map[string]any{"quantity": q, "value": value})
	if err != nil {
		return nil, err
	}
	tr := &api.Transport{Client: d.c.HTTP, MaxAttempts: 1}
	h := http.Header{
		"Content-Type": {"application/json"},
		"Accept":       {d.c.enc().ContentType()},
	}
	raw, rsp, err := tr.Do(ctx, http.MethodPost, joinURL(proxyURI, "control"), h, body)
	if err != nil {
		return nil, err
	}
	ct, _, _ := strings.Cut(rsp.Header.Get("Content-Type"), ";")
	doc, err := dataformat.Decode(raw, dataformat.ParseEncoding(strings.TrimSpace(ct)))
	if err != nil {
		return nil, err
	}
	if doc.Control == nil {
		return nil, fmt.Errorf("client: control returned a %q document", doc.Kind)
	}
	return doc.Control, nil
}

// ControlBatch issues many actuation commands to one device proxy in a
// single round trip (POST /v1/devices/actuate). Like Control, the path
// never retries.
func (d *Devices) ControlBatch(ctx context.Context, proxyURI string, cmds []deviceproxy.ControlRequest) (*deviceproxy.BatchResponse, error) {
	if len(cmds) == 0 {
		return nil, errors.New("client: empty command batch")
	}
	tr := &api.Transport{Client: d.c.HTTP, MaxAttempts: 1}
	var out deviceproxy.BatchResponse
	err := tr.PostJSON(ctx, joinURL(proxyURI, "devices/actuate"),
		deviceproxy.BatchRequest{Commands: cmds}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}
