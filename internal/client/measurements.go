package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/measuredb"
	"repro/internal/tsdb"
)

// Measurements is the measurements-database sub-client, bound to one
// service base URL (the master's query response carries it as
// MeasureURI). It speaks the /v2 query data plane: cursor-paginated
// sample reads with an auto-depaginating iterator, row-at-a-time NDJSON
// streaming, and batch multi-series queries with aggregate pushdown.
type Measurements struct {
	c    *Client
	base string
}

// Measurements returns the sub-client for the measurements database at
// baseURL.
func (c *Client) Measurements(baseURL string) *Measurements {
	return &Measurements{c: c, base: baseURL}
}

// QueryOption tunes one measurements read.
type QueryOption func(*queryOpts)

type queryOpts struct {
	from, to time.Time
	limit    int
	cursor   string
	device   string
	quantity string
	window   time.Duration
	encoding string
}

// WithRange bounds the read to samples in [from, to]; zero bounds are
// open (to defaults to "now" server-side).
func WithRange(from, to time.Time) QueryOption {
	return func(o *queryOpts) { o.from, o.to = from, to }
}

// WithLimit caps one page (or one streamed response) at n samples.
func WithLimit(n int) QueryOption {
	return func(o *queryOpts) { o.limit = n }
}

// WithCursor resumes a paginated read after an opaque cursor a previous
// page returned.
func WithCursor(cursor string) QueryOption {
	return func(o *queryOpts) { o.cursor = cursor }
}

// WithDevice filters the series catalog by a device URI or glob
// ('*' matches any run of characters).
func WithDevice(glob string) QueryOption {
	return func(o *queryOpts) { o.device = glob }
}

// WithQuantity filters the series catalog by a quantity or glob.
func WithQuantity(glob string) QueryOption {
	return func(o *queryOpts) { o.quantity = glob }
}

// WithWindow asks for downsampled buckets of the given width instead of
// a single summary (Aggregate) — the pushdown stays server-side either
// way.
func WithWindow(window time.Duration) QueryOption {
	return func(o *queryOpts) { o.window = window }
}

// WithEncoding selects the streamed wire encoding ("ndjson" or "csv")
// for Stream; the default is NDJSON.
func WithEncoding(encoding string) QueryOption {
	return func(o *queryOpts) { o.encoding = encoding }
}

func applyOpts(opts []QueryOption) queryOpts {
	var o queryOpts
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// values renders the shared query parameters.
func (o queryOpts) values() url.Values {
	v := url.Values{}
	if !o.from.IsZero() {
		v.Set("from", o.from.Format(time.RFC3339Nano))
	}
	if !o.to.IsZero() {
		v.Set("to", o.to.Format(time.RFC3339Nano))
	}
	if o.limit > 0 {
		v.Set("limit", strconv.Itoa(o.limit))
	}
	if o.cursor != "" {
		v.Set("cursor", o.cursor)
	}
	if o.device != "" {
		v.Set("device", o.device)
	}
	if o.quantity != "" {
		v.Set("quantity", o.quantity)
	}
	return v
}

// seriesURL builds a /v2 per-series route URL.
func (m *Measurements) seriesURL(device, quantity, leaf string, q url.Values) string {
	u := api.URL2(m.base, "/series/"+url.PathEscape(device)+"/"+url.PathEscape(quantity)+"/"+leaf)
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// Series returns one page of the series catalog (filter with
// WithDevice/WithQuantity globs, page with WithLimit/WithCursor).
func (m *Measurements) Series(ctx context.Context, opts ...QueryOption) (*measuredb.SeriesPage, error) {
	o := applyOpts(opts)
	u := api.URL2(m.base, "/series")
	if enc := o.values().Encode(); enc != "" {
		u += "?" + enc
	}
	var out measuredb.SeriesPage
	if err := m.c.transport().GetJSON(ctx, u, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AllSeries depaginates the whole series catalog.
func (m *Measurements) AllSeries(ctx context.Context, opts ...QueryOption) ([]measuredb.SeriesInfo, error) {
	var all []measuredb.SeriesInfo
	cursor := ""
	for {
		page, err := m.Series(ctx, append(opts[:len(opts):len(opts)], WithCursor(cursor))...)
		if err != nil {
			return all, err
		}
		all = append(all, page.Series...)
		if page.NextCursor == "" {
			return all, nil
		}
		cursor = page.NextCursor
	}
}

// Samples returns one cursor page of a series range.
func (m *Measurements) Samples(ctx context.Context, device, quantity string, opts ...QueryOption) (*measuredb.SamplesPage, error) {
	o := applyOpts(opts)
	var out measuredb.SamplesPage
	err := m.c.transport().GetJSON(ctx, m.seriesURL(device, quantity, "samples", o.values()), &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Latest returns the freshest sample of a series.
func (m *Measurements) Latest(ctx context.Context, device, quantity string) (*dataformat.Measurement, error) {
	doc, err := m.c.transport().GetDoc(ctx, m.seriesURL(device, quantity, "latest", url.Values{}), m.c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Measurement == nil {
		return nil, fmt.Errorf("client: latest returned a %q document, want measurement", doc.Kind)
	}
	return doc.Measurement, nil
}

// Aggregate returns a server-side range summary of a series.
func (m *Measurements) Aggregate(ctx context.Context, device, quantity string, opts ...QueryOption) (*measuredb.AggregateResponse, error) {
	o := applyOpts(opts)
	var out measuredb.AggregateResponse
	err := m.c.transport().GetJSON(ctx, m.seriesURL(device, quantity, "aggregate", o.values()), &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Downsample returns server-side windowed buckets of a series.
func (m *Measurements) Downsample(ctx context.Context, device, quantity string, window time.Duration, opts ...QueryOption) ([]tsdb.Bucket, error) {
	o := applyOpts(opts)
	v := o.values()
	v.Set("window", window.String())
	var out []tsdb.Bucket
	err := m.c.transport().GetJSON(ctx, m.seriesURL(device, quantity, "aggregate", v), &out)
	return out, err
}

// Query evaluates a batch of series selectors in one round trip — the
// request a district dashboard polling hundreds of devices makes
// instead of hundreds of single-series reads.
func (m *Measurements) Query(ctx context.Context, req measuredb.BatchQuery) (*measuredb.BatchResponse, error) {
	var out measuredb.BatchResponse
	err := m.c.transport().PostJSON(ctx, api.URL2(m.base, "/query"), req, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SampleIter walks a series range page by page, transparently following
// cursors: the consumer sees one sample at a time, the process holds
// one page at most.
type SampleIter struct {
	ctx              context.Context
	m                *Measurements
	device, quantity string
	opts             queryOpts

	page  *measuredb.SamplesPage
	i     int
	pages int
	done  bool
	err   error
}

// Iter returns an auto-depaginating iterator over a series range
// (bound it with WithRange, size the pages with WithLimit).
func (m *Measurements) Iter(ctx context.Context, device, quantity string, opts ...QueryOption) *SampleIter {
	return &SampleIter{ctx: ctx, m: m, device: device, quantity: quantity, opts: applyOpts(opts)}
}

// Next returns the next sample, fetching the next page when the current
// one is exhausted. It reports false at the end of the range or on
// error (check Err).
func (it *SampleIter) Next() (measuredb.Point, bool) {
	for {
		if it.err != nil || it.done {
			return measuredb.Point{}, false
		}
		if it.page != nil && it.i < len(it.page.Samples) {
			p := it.page.Samples[it.i]
			it.i++
			return p, true
		}
		if it.page != nil && it.page.NextCursor == "" {
			it.done = true
			return measuredb.Point{}, false
		}
		// The first fetch honours a WithCursor resume point; later
		// fetches follow the server's cursors.
		o := it.opts
		if it.page != nil {
			o.cursor = it.page.NextCursor
		}
		page := new(measuredb.SamplesPage)
		if err := it.m.c.transport().GetJSON(it.ctx, it.m.seriesURL(it.device, it.quantity, "samples", o.values()), page); err != nil {
			it.err = err
			return measuredb.Point{}, false
		}
		it.page = page
		it.i = 0
		it.pages++
	}
}

// Err returns the error that stopped the iterator, if any.
func (it *SampleIter) Err() error { return it.err }

// Pages reports how many pages the iterator fetched so far.
func (it *SampleIter) Pages() int { return it.pages }

// streamHTTPClient carries NDJSON/CSV sample streams. Deliberately not
// the shared api client: its whole-request timeout would amputate a
// long streaming read.
var streamHTTPClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:          64,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: 10 * time.Second,
	},
}

// SampleStream is a row-at-a-time NDJSON sample stream: the whole range
// crosses the wire without either end materializing it.
type SampleStream struct {
	body io.ReadCloser
	dec  *json.Decoder
	err  error
}

// Stream opens a streamed read of a series range. The default encoding
// is NDJSON, decoded row by row; Close when done.
func (m *Measurements) Stream(ctx context.Context, device, quantity string, opts ...QueryOption) (*SampleStream, error) {
	o := applyOpts(opts)
	v := o.values()
	if o.encoding != "" && o.encoding != "ndjson" {
		return nil, fmt.Errorf("client: streamed decode supports ndjson only, not %q (use Samples for JSON pages)", o.encoding)
	}
	u := m.seriesURL(device, quantity, "samples", v)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", measuredb.NDJSONType)
	// A caller-supplied client usually carries a whole-request Timeout,
	// which would amputate a long stream mid-read: reuse its transport
	// (pooling, TLS) but never its deadline — cancel via ctx instead.
	hc := streamHTTPClient
	if m.c.HTTP != nil {
		hc = &http.Client{Transport: m.c.HTTP.Transport, Jar: m.c.HTTP.Jar}
	}
	rsp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	if rsp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(rsp.Body, 512))
		rsp.Body.Close()
		return nil, &api.StatusError{
			Method: http.MethodGet, URL: u,
			Status: rsp.StatusCode, Body: strings.TrimSpace(string(body)),
		}
	}
	return &SampleStream{body: rsp.Body, dec: json.NewDecoder(rsp.Body)}, nil
}

// Next decodes the next row. It reports false at the end of the stream
// or on error (check Err).
func (s *SampleStream) Next() (measuredb.Point, bool) {
	if s.err != nil {
		return measuredb.Point{}, false
	}
	var p measuredb.Point
	if err := s.dec.Decode(&p); err != nil {
		if err != io.EOF {
			s.err = err
		}
		return measuredb.Point{}, false
	}
	return p, true
}

// Err returns the error that stopped the stream, if any.
func (s *SampleStream) Err() error { return s.err }

// Close releases the underlying connection.
func (s *SampleStream) Close() error { return s.body.Close() }
