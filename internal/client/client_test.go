package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bim"
	"repro/internal/dataformat"
	"repro/internal/dbproxy"
	"repro/internal/gis"
	"repro/internal/master"
	"repro/internal/ontology"
	"repro/internal/proxyhttp"
	"repro/internal/registry"
)

// fixture wires a master, one BIM proxy and one GIS proxy by hand (no
// core bootstrap, so this package's tests stay independent of it).
type fixture struct {
	masterTS *httptest.Server
	bimTS    *httptest.Server
	gisTS    *httptest.Server
	client   *Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	m := master.New(master.Options{})
	ont := m.Ontology()
	turin, err := ont.AddDistrict("turin", "Torino")
	if err != nil {
		t.Fatal(err)
	}

	building := bim.Synthesize(bim.SynthOptions{ID: "b01", Seed: 21, Storeys: 1, SpacesPerStorey: 1, DevicesPerSpace: 0})
	bimProxy, err := dbproxy.NewBIMProxy("turin", building)
	if err != nil {
		t.Fatal(err)
	}
	bimTS := httptest.NewServer(bimProxy.Handler())
	t.Cleanup(bimTS.Close)

	store := gis.NewStore(0)
	_ = store.Add(gis.Feature{
		ID: "urn:district:turin/building:b01", Kind: gis.FeatureBuilding, Name: "GIS name",
		Footprint: []gis.Point{{Lat: building.Lat, Lon: building.Lon}},
	})
	gisProxy := dbproxy.NewGISProxy("turin", store)
	gisTS := httptest.NewServer(gisProxy.Handler())
	t.Cleanup(gisTS.Close)

	b1, err := ont.AddEntity(turin, ontology.KindBuilding, "b01", building.Name, building.Lat, building.Lon)
	if err != nil {
		t.Fatal(err)
	}
	_ = ont.SetProperty(b1, ontology.PropProxyURI, bimTS.URL+"/")
	_ = ont.SetProperty(turin, ontology.PropGISURI, gisTS.URL+"/")
	// An entity with no proxy yet: must be skipped, not fatal.
	if _, err := ont.AddEntity(turin, ontology.KindBuilding, "b99", "Unserved", building.Lat, building.Lon); err != nil {
		t.Fatal(err)
	}

	masterTS := httptest.NewServer(m.Handler())
	t.Cleanup(masterTS.Close)
	return &fixture{
		masterTS: masterTS, bimTS: bimTS, gisTS: gisTS,
		client: &Client{MasterURL: masterTS.URL},
	}
}

func TestQuery(t *testing.T) {
	f := newFixture(t)
	qr, err := f.client.Query(context.Background(), "turin", Area{})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Entities) != 2 || qr.GISURI == "" {
		t.Fatalf("query = %+v", qr)
	}
	if _, err := f.client.Query(context.Background(), "ghost", Area{}); err == nil {
		t.Error("unknown district accepted")
	}
}

func TestFetchModel(t *testing.T) {
	f := newFixture(t)
	e, err := f.client.FetchModel(context.Background(), f.bimTS.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != dataformat.EntityBuilding {
		t.Errorf("model = %+v", e)
	}
	if _, err := f.client.FetchModel(context.Background(), f.masterTS.URL+"/"); err == nil {
		t.Error("non-document endpoint accepted as model")
	}
}

func TestFetchGISFeatures(t *testing.T) {
	f := newFixture(t)
	feats, err := f.client.FetchGISFeatures(context.Background(), f.gisTS.URL+"/", Area{})
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 1 || feats[0].Name != "GIS name" {
		t.Fatalf("features = %+v", feats)
	}
}

func TestBuildAreaModelMergesBIMAndGIS(t *testing.T) {
	f := newFixture(t)
	model, err := f.client.BuildAreaModel(context.Background(), "turin", Area{}, BuildOptions{IncludeGIS: true})
	if err != nil {
		t.Fatal(err)
	}
	b, ok := model.Entity("urn:district:turin/building:b01")
	if !ok {
		t.Fatal("building missing")
	}
	if _, ok := b.Prop("envelopeUA.WperK"); !ok {
		t.Error("BIM property missing")
	}
	if _, ok := b.Prop("bounds"); !ok {
		t.Error("GIS property missing")
	}
	// BIM and GIS disagree on the name: conflict must be recorded.
	if len(model.Conflicts) == 0 {
		t.Error("name conflict not recorded")
	}
	if len(model.Sources) != 2 {
		t.Errorf("sources = %v", model.Sources)
	}
}

func TestBuildAreaModelPartialFailure(t *testing.T) {
	f := newFixture(t)
	f.bimTS.Close() // BIM proxy died
	model, err := f.client.BuildAreaModel(context.Background(), "turin", Area{}, BuildOptions{IncludeGIS: true})
	if err == nil {
		t.Fatal("dead proxy not reported")
	}
	// The GIS part must still be present (partial result).
	if model == nil || len(model.Entities) == 0 {
		t.Fatal("partial model discarded")
	}
}

func TestControlAndDeviceEndpoints(t *testing.T) {
	// A fake device proxy speaking the common format.
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/info", func(w http.ResponseWriter, r *http.Request) {
		doc := dataformat.NewDeviceInfoDoc(dataformat.DeviceInfo{
			URI: "urn:d", Protocol: "fake", Senses: []dataformat.Quantity{dataformat.Temperature},
		})
		proxyhttp.WriteDoc(w, r, doc)
	})
	mux.HandleFunc("/v1/latest", func(w http.ResponseWriter, r *http.Request) {
		doc := dataformat.NewMeasurementDoc(dataformat.Measurement{
			Device: "urn:d", Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
			Value: 21, Timestamp: time.Now().UTC(),
		})
		proxyhttp.WriteDoc(w, r, doc)
	})
	mux.HandleFunc("/v1/data", func(w http.ResponseWriter, r *http.Request) {
		doc := dataformat.NewMeasurementsDoc(nil)
		proxyhttp.WriteDoc(w, r, doc)
	})
	mux.HandleFunc("/v1/control", func(w http.ResponseWriter, r *http.Request) {
		doc := dataformat.NewControlResultDoc(dataformat.ControlResult{
			Device: "urn:d", Quantity: dataformat.SwitchState, Value: 1, Applied: true, At: time.Now().UTC(),
		})
		proxyhttp.WriteDoc(w, r, doc)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{}
	info, err := c.FetchDeviceInfo(context.Background(), ts.URL+"/")
	if err != nil || info.Protocol != "fake" {
		t.Fatalf("info: %+v %v", info, err)
	}
	m, err := c.FetchLatest(context.Background(), ts.URL+"/", dataformat.Temperature)
	if err != nil || m.Value != 21 {
		t.Fatalf("latest: %+v %v", m, err)
	}
	ms, err := c.FetchData(context.Background(), ts.URL+"/", dataformat.Temperature, time.Now().Add(-time.Hour), time.Now())
	if err != nil || len(ms) != 0 {
		t.Fatalf("data: %v %v", ms, err)
	}
	res, err := c.Control(context.Background(), ts.URL+"/", dataformat.SwitchState, 1)
	if err != nil || !res.Applied {
		t.Fatalf("control: %+v %v", res, err)
	}
}

func TestDevicesViaMaster(t *testing.T) {
	f := newFixture(t)
	devices, err := f.client.Catalog().Devices(context.Background(), "urn:district:turin/building:b01")
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 0 {
		t.Errorf("devices = %+v", devices)
	}
	if _, err := f.client.Catalog().Devices(context.Background(), "urn:ghost"); err == nil {
		t.Error("unknown entity accepted")
	}
}

func TestAreaEmpty(t *testing.T) {
	if !(Area{}).Empty() {
		t.Error("zero area not empty")
	}
	if (Area{MaxLat: 1}).Empty() {
		t.Error("non-zero area empty")
	}
}

func TestRegistrarIntegration(t *testing.T) {
	// proxyhttp.Registrar against a real master handler: register,
	// heartbeat, deregister.
	m := master.New(master.Options{})
	if _, err := m.Ontology().AddDistrict("turin", "Torino"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	reg := &proxyhttp.Registrar{
		MasterURL: ts.URL,
		Registration: registry.Registration{
			ID: "p1", Kind: registry.KindGIS,
			BaseURL: "http://x/", EntityURI: "urn:district:turin",
		},
		HeartbeatEvery: 10 * time.Millisecond,
	}
	if err := reg.Start(); err != nil {
		t.Fatal(err)
	}
	if m.Registry().Len() != 1 {
		t.Fatal("not registered")
	}
	time.Sleep(50 * time.Millisecond) // let heartbeats run
	reg.Stop()
	if m.Registry().Len() != 0 {
		t.Fatal("not deregistered on Stop")
	}
}

func TestRegistrarBadMaster(t *testing.T) {
	reg := &proxyhttp.Registrar{
		MasterURL: "http://127.0.0.1:1",
		Registration: registry.Registration{
			ID: "p1", Kind: registry.KindGIS, BaseURL: "u", EntityURI: "e",
		},
	}
	if err := reg.Start(); err == nil {
		t.Fatal("registration against dead master succeeded")
	}
}

// deviceFixture adds a device with a working fake device proxy to the
// master so BuildAreaModel's IncludeDevices/History paths run.
func TestBuildAreaModelWithDevices(t *testing.T) {
	m := master.New(master.Options{})
	ont := m.Ontology()
	turin, err := ont.AddDistrict("turin", "Torino")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := ont.AddEntity(turin, ontology.KindBuilding, "b01", "B", 45.06, 7.66)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := ont.AddDevice(b1, "t-1", "Temp", 45.06, 7.66)
	if err != nil {
		t.Fatal(err)
	}

	// Fake BIM proxy with a trivial model.
	bimMux := http.NewServeMux()
	bimMux.HandleFunc("/v1/model", func(w http.ResponseWriter, r *http.Request) {
		proxyhttp.WriteDoc(w, r, dataformat.NewEntityDoc(dataformat.Entity{
			URI: b1, Kind: dataformat.EntityBuilding, Name: "B",
		}))
	})
	bimTS := httptest.NewServer(bimMux)
	t.Cleanup(bimTS.Close)
	_ = ont.SetProperty(b1, ontology.PropProxyURI, bimTS.URL+"/")

	// Fake device proxy: info + history + latest.
	history := []dataformat.Measurement{
		{Device: d1, Quantity: dataformat.Temperature, Unit: dataformat.Celsius, Value: 20, Timestamp: time.Now().UTC().Add(-2 * time.Minute)},
		{Device: d1, Quantity: dataformat.Temperature, Unit: dataformat.Celsius, Value: 21, Timestamp: time.Now().UTC().Add(-time.Minute)},
	}
	devMux := http.NewServeMux()
	devMux.HandleFunc("/v1/info", func(w http.ResponseWriter, r *http.Request) {
		proxyhttp.WriteDoc(w, r, dataformat.NewDeviceInfoDoc(dataformat.DeviceInfo{
			URI: d1, Protocol: "fake", Name: "Temp",
			Senses: []dataformat.Quantity{dataformat.Temperature},
		}))
	})
	devMux.HandleFunc("/v1/data", func(w http.ResponseWriter, r *http.Request) {
		proxyhttp.WriteDoc(w, r, dataformat.NewMeasurementsDoc(history))
	})
	devMux.HandleFunc("/v1/latest", func(w http.ResponseWriter, r *http.Request) {
		proxyhttp.WriteDoc(w, r, dataformat.NewMeasurementDoc(history[len(history)-1]))
	})
	devTS := httptest.NewServer(devMux)
	t.Cleanup(devTS.Close)
	_ = ont.SetProperty(d1, ontology.PropProxyURI, devTS.URL+"/")

	masterTS := httptest.NewServer(m.Handler())
	t.Cleanup(masterTS.Close)
	c := &Client{MasterURL: masterTS.URL}

	// History path: both buffered samples land in the model.
	model, err := c.BuildAreaModel(context.Background(), "turin", Area{}, BuildOptions{
		IncludeDevices: true, History: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := model.MeasurementsFor(d1); len(got) != 2 {
		t.Fatalf("history measurements = %d, want 2", len(got))
	}
	dev, ok := model.Entity(d1)
	if !ok {
		t.Fatal("device entity missing")
	}
	if v, _ := dev.Prop("protocol"); v != "fake" {
		t.Errorf("device protocol = %q", v)
	}

	// Latest-only path.
	model, err = c.BuildAreaModel(context.Background(), "turin", Area{}, BuildOptions{IncludeDevices: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := model.MeasurementsFor(d1); len(got) != 1 || got[0].Value != 21 {
		t.Fatalf("latest measurements = %+v", got)
	}
}
