package client

import (
	"context"
	"fmt"
	"net/url"

	"repro/internal/api"
	"repro/internal/dataformat"
	"repro/internal/master"
	"repro/internal/ontology"
)

// Catalog is the master-node sub-client: the redirection step of the
// paper's flow. It answers "what exists where" — area queries, device
// resolution, the ontology — and returns the proxy URIs the data
// sub-clients then talk to directly.
type Catalog struct {
	c *Client
}

// Catalog returns the master-node sub-client.
func (c *Client) Catalog() *Catalog { return &Catalog{c: c} }

// Query asks the master node for the entities of an area and their
// proxy URIs.
func (cc *Catalog) Query(ctx context.Context, district string, area Area) (*master.QueryResponse, error) {
	u := cc.c.masterURL("/query") + "?district=" + url.QueryEscape(district)
	if !area.Empty() {
		u += fmt.Sprintf("&minLat=%g&minLon=%g&maxLat=%g&maxLon=%g",
			area.MinLat, area.MinLon, area.MaxLat, area.MaxLon)
	}
	var out master.QueryResponse
	if err := cc.c.getJSON(ctx, u, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Devices asks the master node for the device leaves of an entity.
func (cc *Catalog) Devices(ctx context.Context, entityURI string) ([]ontology.Resolution, error) {
	var out []ontology.Resolution
	err := cc.c.getJSON(ctx, cc.c.masterURL("/devices")+"?entity="+url.QueryEscape(entityURI), &out)
	return out, err
}

// Districts lists the districts the master node serves.
func (cc *Catalog) Districts(ctx context.Context) ([]string, error) {
	var out []string
	err := cc.c.getJSON(ctx, cc.c.masterURL("/districts"), &out)
	return out, err
}

// Ontology retrieves an ontology subtree as a common-format entity.
func (cc *Catalog) Ontology(ctx context.Context, uri string) (*dataformat.Entity, error) {
	doc, err := cc.c.transport().GetDoc(ctx, cc.c.masterURL("/ontology")+"?uri="+url.QueryEscape(uri), cc.c.enc())
	if err != nil {
		return nil, err
	}
	if doc.Entity == nil {
		return nil, fmt.Errorf("client: ontology returned a %q document, want entity", doc.Kind)
	}
	return doc.Entity, nil
}

// Proxies lists the live proxy registrations.
func (cc *Catalog) Proxies(ctx context.Context) ([]map[string]any, error) {
	var out []map[string]any
	err := cc.c.getJSON(ctx, cc.c.masterURL("/proxies"), &out)
	return out, err
}

// joinURL appends a versioned path segment to a proxy base URL that may
// or may not end with a slash.
func joinURL(base, path string) string {
	return api.URL(base, path)
}
