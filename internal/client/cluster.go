package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/measuredb"
)

// ClusterClient is the cluster-operations sub-client: it reads and
// publishes the master's shard map, inspects node shard state, and
// orchestrates live shard handoffs.
type ClusterClient struct {
	c *Client
}

// Cluster returns the cluster-operations sub-client (master-bound; the
// per-node calls take node base URLs from the map).
func (c *Client) Cluster() *ClusterClient {
	return &ClusterClient{c: c}
}

// Map fetches the master's current shard map.
func (cc *ClusterClient) Map(ctx context.Context) (cluster.Map, error) {
	var m cluster.Map
	if err := cc.c.transport().GetJSON(ctx, cc.c.masterURL("/cluster/map"), &m); err != nil {
		return cluster.Map{}, err
	}
	return m, nil
}

// SetMap publishes a full shard map on the master (epoch assigned by
// the master's registry; the submitted epoch is ignored).
func (cc *ClusterClient) SetMap(ctx context.Context, m cluster.Map) (cluster.Map, error) {
	var out cluster.Map
	if err := cc.c.transport().PostJSON(ctx, cc.c.masterURL("/cluster/map"), m, &out); err != nil {
		return cluster.Map{}, err
	}
	return out, nil
}

// MoveShard flips one shard's ownership on the master map (epoch
// bump), without touching any data — Move is the full orchestration.
func (cc *ClusterClient) MoveShard(ctx context.Context, shard int, node string) (cluster.Map, error) {
	var out cluster.Map
	in := map[string]any{"shard": shard, "node": node}
	if err := cc.c.transport().PostJSON(ctx, cc.c.masterURL("/cluster/move"), in, &out); err != nil {
		return cluster.Map{}, err
	}
	return out, nil
}

// NodeStatus fetches one node's cluster status (map view, per-shard
// ownership, sizes, WAL depth).
func (cc *ClusterClient) NodeStatus(ctx context.Context, node string) (*measuredb.ClusterNodeStatus, error) {
	var out measuredb.ClusterNodeStatus
	if err := cc.c.transport().GetJSON(ctx, api.URL(node, "/cluster/status"), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MoveReport summarizes one completed shard handoff.
type MoveReport struct {
	Shard int    `json:"shard"`
	From  string `json:"from"`
	To    string `json:"to"`
	// Rows is how many rows the target replayed from the archive.
	Rows int `json:"rows"`
	// Epoch is the map epoch after the flip.
	Epoch uint64 `json:"epoch"`
}

// Move performs a live shard handoff: freeze the shard on its current
// owner (draining in-flight writes and fsyncing its WAL), stream the
// frozen directory to the target, replay it there, flip the master map
// (epoch bump), and release the source (which re-resolves the map, sees
// ownership gone, and wipes its local copy). Writes addressed to the
// shard are rejected with retryable envelopes between freeze and flip,
// so a router retrying through the new map loses nothing.
//
// If any step after the freeze fails, the source shard is released
// without the map having flipped: it unfreezes still owning its data,
// and the cluster is back where it started.
func (cc *ClusterClient) Move(ctx context.Context, shard int, target string) (*MoveReport, error) {
	t := cc.c.transport()
	m, err := cc.Map(ctx)
	if err != nil {
		return nil, fmt.Errorf("resolve shard map: %w", err)
	}
	src := m.Owner(shard)
	if src == "" {
		return nil, fmt.Errorf("shard %d is out of range (map has %d shards)", shard, m.Shards)
	}
	if src == target {
		return nil, fmt.Errorf("shard %d is already owned by %s", shard, target)
	}

	shardPath := func(base, op string) string {
		return api.URL(base, "/cluster/shards/"+strconv.Itoa(shard)+"/"+op)
	}
	release := func() {
		// Best-effort: release re-resolves the map itself, so calling it
		// after the flip wipes the source and before the flip just
		// unfreezes — the same call is the abort and the cleanup.
		_ = t.PostJSON(ctx, shardPath(src, "release"), nil, nil)
	}
	if err := t.PostJSON(ctx, shardPath(src, "freeze"), nil, nil); err != nil {
		return nil, fmt.Errorf("freeze shard %d on %s: %w", shard, src, err)
	}
	archive, _, err := t.Do(ctx, http.MethodGet, shardPath(src, "archive"), nil, nil)
	if err != nil {
		release()
		return nil, fmt.Errorf("archive shard %d from %s: %w", shard, src, err)
	}
	var restored struct {
		Rows int `json:"rows"`
	}
	{
		h := http.Header{"Content-Type": {"application/octet-stream"}}
		raw, _, err := t.Do(ctx, http.MethodPost, shardPath(target, "restore"), h, archive)
		if err != nil {
			release()
			return nil, fmt.Errorf("restore shard %d on %s: %w", shard, target, err)
		}
		if err := json.Unmarshal(raw, &restored); err != nil {
			release()
			return nil, fmt.Errorf("restore shard %d on %s: bad response: %w", shard, target, err)
		}
	}
	flipped, err := cc.MoveShard(ctx, shard, target)
	if err != nil {
		release()
		return nil, fmt.Errorf("flip map for shard %d: %w", shard, err)
	}
	release()
	return &MoveReport{Shard: shard, From: src, To: target, Rows: restored.Rows, Epoch: flipped.Epoch}, nil
}
