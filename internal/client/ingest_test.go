package client

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/measuredb"
	"repro/internal/tsdb"
)

// newEmptyMeasureService boots an empty measurements DB over HTTP.
func newEmptyMeasureService(t *testing.T) (*measuredb.Service, *httptest.Server) {
	t.Helper()
	svc := measuredb.New(measuredb.Options{})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

// newIngestFixture boots an empty measurements DB and returns both the
// write and read sub-clients plus the service.
func newIngestFixture(t *testing.T) (*measuredb.Service, *Ingest, *Measurements) {
	t.Helper()
	svc, ts := newEmptyMeasureService(t)
	c := &Client{MasterURL: "http://unused/"}
	return svc, c.Ingest(ts.URL), c.Measurements(ts.URL)
}

func ingestRow(i int) measuredb.Point {
	return measuredb.Point{
		Device: measDevice, Quantity: "temperature",
		At: m0.Add(time.Duration(i) * time.Minute), Value: float64(i),
	}
}

func TestIngestAppendBatch(t *testing.T) {
	svc, ic, mc := newIngestFixture(t)
	rows := make([]measuredb.Point, 10)
	for i := range rows {
		rows[i] = ingestRow(i)
	}
	rows[3].Device = "" // one bad row: located, not fatal
	res, err := ic.Append(context.Background(), rows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 9 || res.Rejected != 1 || len(res.Errors) != 1 || res.Errors[0].Row != 3 {
		t.Fatalf("result = %+v", res)
	}
	if got := svc.Store().Len(tsdb.SeriesKey{Device: measDevice, Quantity: "temperature"}); got != 9 {
		t.Fatalf("stored = %d", got)
	}
	agg, err := mc.Aggregate(context.Background(), measDevice, "temperature")
	if err != nil || agg.Count != 9 {
		t.Fatalf("read back aggregate = %+v, err %v", agg, err)
	}
}

func TestIngestAppendSeries(t *testing.T) {
	svc, ic, _ := newIngestFixture(t)
	samples := []measuredb.Point{
		{At: m0, Value: 1},
		{At: m0.Add(time.Minute), Value: 2},
	}
	res, err := ic.AppendSeries(context.Background(), measDevice, "humidity", samples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 || res.Rejected != 0 {
		t.Fatalf("result = %+v", res)
	}
	smp, err := svc.Store().Latest(tsdb.SeriesKey{Device: measDevice, Quantity: "humidity"})
	if err != nil || smp.Value != 2 {
		t.Fatalf("latest = %+v, err %v", smp, err)
	}
}

// TestIngestIdempotentRetry re-sends one keyed batch and checks the
// server replays the summary instead of double-appending.
func TestIngestIdempotentRetry(t *testing.T) {
	svc, ic, _ := newIngestFixture(t)
	rows := []measuredb.Point{ingestRow(0)}
	if _, err := ic.Append(context.Background(), rows, WithIdempotencyKey("k1")); err != nil {
		t.Fatal(err)
	}
	res, err := ic.Append(context.Background(), rows, WithIdempotencyKey("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replayed || res.Accepted != 1 {
		t.Fatalf("retry result = %+v", res)
	}
	if got := svc.Store().Len(tsdb.SeriesKey{Device: measDevice, Quantity: "temperature"}); got != 1 {
		t.Fatalf("stored = %d, want 1", got)
	}
}

// TestIngestBatcherSizeFlush checks the builder ships a batch as soon as
// the size threshold fires, without waiting for the interval.
func TestIngestBatcherSizeFlush(t *testing.T) {
	svc, ic, _ := newIngestFixture(t)
	var delivered atomic.Int64
	b := ic.Batcher(BatcherOptions{
		MaxRows:    8,
		FlushEvery: -1, // size-only: prove the threshold alone ships
		OnError:    func(err error) { t.Errorf("flush: %v", err) },
		OnResult:   func(r *measuredb.IngestResult) { delivered.Add(int64(r.Accepted)) },
	})
	for i := 0; i < 20; i++ {
		if err := b.Add(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := delivered.Load(); got != 16 {
		t.Fatalf("delivered before close = %d, want 16 (two full batches)", got)
	}
	b.Close() // ships the 4-row tail
	if got := delivered.Load(); got != 20 {
		t.Fatalf("delivered after close = %d", got)
	}
	if got := svc.Store().Len(tsdb.SeriesKey{Device: measDevice, Quantity: "temperature"}); got != 20 {
		t.Fatalf("stored = %d", got)
	}
	if err := b.Add(ingestRow(99)); err != ErrBatcherClosed {
		t.Fatalf("Add after close = %v", err)
	}
}

// TestIngestBatcherIntervalFlush checks a sub-threshold batch still
// ships on the timer.
func TestIngestBatcherIntervalFlush(t *testing.T) {
	svc, ic, _ := newIngestFixture(t)
	b := ic.Batcher(BatcherOptions{MaxRows: 1000, FlushEvery: 20 * time.Millisecond})
	defer b.Close()
	for i := 0; i < 3; i++ {
		if err := b.Add(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	key := tsdb.SeriesKey{Device: measDevice, Quantity: "temperature"}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Store().Len(key) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flush never delivered: %d stored", svc.Store().Len(key))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIngestStreamNDJSON streams rows through the pipe writer and reads
// the summary at Close.
func TestIngestStreamNDJSON(t *testing.T) {
	svc, ic, _ := newIngestFixture(t)
	st, err := ic.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const rows = 5000
	for i := 0; i < rows; i++ {
		if err := st.Write(ingestRow(i)); err != nil {
			t.Fatalf("write row %d: %v", i, err)
		}
	}
	res, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != rows || res.Rejected != 0 {
		t.Fatalf("summary = %+v", res)
	}
	if got := svc.Store().Len(tsdb.SeriesKey{Device: measDevice, Quantity: "temperature"}); got != rows {
		t.Fatalf("stored = %d", got)
	}
}
