package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/measuredb"
)

var m0 = time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC)

const measDevice = "urn:district:turin/building:b01/device:t-1"

// newMeasureFixture boots a measurements DB with n samples in one
// temperature series and returns the bound sub-client.
func newMeasureFixture(t *testing.T, n int) *Measurements {
	t.Helper()
	svc := measuredb.New(measuredb.Options{})
	for i := 0; i < n; i++ {
		m := dataformat.Measurement{
			Source: "http://devproxy/", Device: measDevice,
			Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
			Value: float64(i), Timestamp: m0.Add(time.Duration(i) * time.Minute),
		}
		if err := svc.Ingest(&m); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	c := &Client{MasterURL: "http://unused/"}
	return c.Measurements(ts.URL)
}

func TestMeasurementsSamplesPage(t *testing.T) {
	mc := newMeasureFixture(t, 50)
	page, err := mc.Samples(context.Background(), measDevice, "temperature", WithLimit(20))
	if err != nil {
		t.Fatal(err)
	}
	if page.Count != 20 || page.NextCursor == "" {
		t.Fatalf("page = count %d cursor %q", page.Count, page.NextCursor)
	}
	next, err := mc.Samples(context.Background(), measDevice, "temperature",
		WithLimit(20), WithCursor(page.NextCursor))
	if err != nil {
		t.Fatal(err)
	}
	if next.Count != 20 || next.Samples[0].Value != 20 {
		t.Fatalf("second page starts at %v with %d samples", next.Samples[0].Value, next.Count)
	}
}

func TestMeasurementsIterDepaginates(t *testing.T) {
	mc := newMeasureFixture(t, 95)
	it := mc.Iter(context.Background(), measDevice, "temperature", WithLimit(20))
	var got []float64
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, p.Value)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 95 || it.Pages() != 5 {
		t.Fatalf("iterator walked %d samples over %d pages, want 95 over 5", len(got), it.Pages())
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("sample %d = %v (gap or duplicate across pages)", i, v)
		}
	}

	// A range bound propagates into every page request.
	it = mc.Iter(context.Background(), measDevice, "temperature",
		WithLimit(10), WithRange(m0.Add(30*time.Minute), m0.Add(49*time.Minute)))
	n := 0
	for _, ok := it.Next(); ok; _, ok = it.Next() {
		n++
	}
	if it.Err() != nil || n != 20 {
		t.Fatalf("bounded walk = %d samples (%v), want 20", n, it.Err())
	}
}

func TestMeasurementsIterMissingSeries(t *testing.T) {
	mc := newMeasureFixture(t, 3)
	it := mc.Iter(context.Background(), "urn:nope", "temperature")
	if _, ok := it.Next(); ok {
		t.Fatal("iterator over a missing series yielded a sample")
	}
	if it.Err() == nil {
		t.Fatal("missing series produced no error")
	}
}

func TestMeasurementsNDJSONStream(t *testing.T) {
	mc := newMeasureFixture(t, 1200) // larger than one default page
	st, err := mc.Stream(context.Background(), measDevice, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n := 0
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		if p.Device != measDevice || p.Value != float64(n) {
			t.Fatalf("row %d = %+v", n, p)
		}
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1200 {
		t.Fatalf("streamed %d rows, want 1200", n)
	}
}

func TestMeasurementsCatalogAndAggregate(t *testing.T) {
	mc := newMeasureFixture(t, 10)
	series, err := mc.AllSeries(context.Background())
	if err != nil || len(series) != 1 {
		t.Fatalf("catalog = %+v (%v)", series, err)
	}
	if series[0].Device != measDevice || series[0].Samples != 10 {
		t.Fatalf("catalog entry = %+v", series[0])
	}

	agg, err := mc.Aggregate(context.Background(), measDevice, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 10 || agg.Mean != 4.5 {
		t.Fatalf("aggregate = %+v", agg)
	}

	buckets, err := mc.Downsample(context.Background(), measDevice, "temperature", 5*time.Minute)
	if err != nil || len(buckets) != 2 {
		t.Fatalf("buckets = %+v (%v)", buckets, err)
	}

	latest, err := mc.Latest(context.Background(), measDevice, "temperature")
	if err != nil || latest.Value != 9 {
		t.Fatalf("latest = %+v (%v)", latest, err)
	}
}

func TestMeasurementsBatchQuery(t *testing.T) {
	mc := newMeasureFixture(t, 25)
	out, err := mc.Query(context.Background(), measuredb.BatchQuery{
		Selectors: []measuredb.SeriesSelector{
			{Device: "urn:district:turin/*", Quantity: "temperature"},
			{Device: "urn:ghost"},
		},
		Aggregate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Series != 1 {
		t.Fatalf("batch = %+v", out)
	}
	if agg := out.Results[0].Series[0].Aggregate; agg == nil || agg.Count != 25 {
		t.Fatalf("aggregate pushdown = %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Fatalf("miss selector = %+v", out.Results[1])
	}
}

func TestMeasurementsIterResumesFromCursor(t *testing.T) {
	mc := newMeasureFixture(t, 50)
	// Walk the first page by hand, then hand its cursor to Iter.
	page, err := mc.Samples(context.Background(), measDevice, "temperature", WithLimit(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Samples) != 20 || page.NextCursor == "" {
		t.Fatalf("first page = %d samples, cursor %q", len(page.Samples), page.NextCursor)
	}
	it := mc.Iter(context.Background(), measDevice, "temperature",
		WithLimit(20), WithCursor(page.NextCursor))
	var got []float64
	for p, ok := it.Next(); ok; p, ok = it.Next() {
		got = append(got, p.Value)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 || got[0] != 20 {
		t.Fatalf("resumed walk = %d samples starting at %v, want 30 starting at 20 (cursor ignored?)", len(got), got[0])
	}
}
