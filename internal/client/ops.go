package client

import (
	"context"
	"fmt"
	"net/url"

	"repro/internal/api"
	"repro/internal/measuredb"
)

// Ops is the operations sub-client, bound to one service base URL. Every
// service in the platform (master, measurements DB, device proxies)
// serves the same ops surface, so the same sub-client reads metrics
// snapshots and retained trace spans from any of them.
type Ops struct {
	c    *Client
	base string
}

// Ops returns the operations sub-client for the service at baseURL.
func (c *Client) Ops(baseURL string) *Ops {
	return &Ops{c: c, base: baseURL}
}

// Metrics fetches the service's /v1/metrics snapshot: per-route
// counters, limiter stats, and the obs instruments (histograms,
// storage-internals gauges) registered by that service.
func (o *Ops) Metrics(ctx context.Context) (*api.MetricsSnapshot, error) {
	var out api.MetricsSnapshot
	if err := o.c.transport().GetJSON(ctx, api.URL(o.base, "/metrics"), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StorageStatus fetches a measurements DB's per-shard durable storage
// report (GET /v1/storage): head series/samples, WAL watermarks, block
// files and their on-disk bytes.
func (o *Ops) StorageStatus(ctx context.Context) (*measuredb.StorageStatus, error) {
	var out measuredb.StorageStatus
	if err := o.c.transport().GetJSON(ctx, api.URL(o.base, "/storage"), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compact forces a block compaction cycle on a measurements DB
// (POST /v1/storage/compact): head rows past the head window are cut
// into a block file, retention applies, and the WAL truncates. A
// negative shard compacts every shard.
func (o *Ops) Compact(ctx context.Context, shard int) error {
	u := api.URL(o.base, "/storage/compact")
	if shard >= 0 {
		u = api.URL(o.base, fmt.Sprintf("/storage/compact?shard=%d", shard))
	}
	return o.c.transport().PostJSON(ctx, u, nil, nil)
}

// Trace fetches the span records the service retains for one trace ID,
// oldest first. Services keep spans in a bounded ring, so old traces
// age out; a not-found error means the ID was never seen or has been
// evicted.
func (o *Ops) Trace(ctx context.Context, id string) (*api.TraceResponse, error) {
	var out api.TraceResponse
	u := api.URL(o.base, "/trace/"+url.PathEscape(id))
	if err := o.c.transport().GetJSON(ctx, u, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
