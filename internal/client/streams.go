package client

import (
	"context"

	"repro/internal/api"
	"repro/internal/middleware"
	"repro/internal/stream"
)

// Streams is the live-event sub-client: resuming SSE subscriptions to
// any streaming service of the infrastructure plus the HTTP publish
// ingress.
type Streams struct {
	c *Client
}

// Streams returns the live-event sub-client.
func (c *Client) Streams() *Streams { return &Streams{c: c} }

// Subscribe opens a live subscription to the master node's event stream
// (registry lifecycle topics) for a topic pattern. The subscription
// reconnects automatically and resumes with Last-Event-ID, so consumers
// see each event at most once with no gaps across a reconnect.
func (s *Streams) Subscribe(ctx context.Context, pattern string) (*stream.Subscription, error) {
	return stream.Subscribe(ctx, s.c.MasterURL, pattern, stream.SubscribeOptions{})
}

// SubscribeService opens a live subscription to any streaming service of
// the infrastructure (measurements database, a device proxy) by its base
// URL — the redirection pattern of the paper applied to live data: the
// master's query response carries the URIs, the client subscribes to the
// source directly.
func (s *Streams) SubscribeService(ctx context.Context, serviceURL, pattern string) (*stream.Subscription, error) {
	return stream.Subscribe(ctx, serviceURL, pattern, stream.SubscribeOptions{})
}

// Publish injects one event into a remote service's bus through its
// /v1/publish ingress. It never retries: injection is not idempotent,
// and a retry after a lost response would duplicate the event in every
// downstream store.
func (s *Streams) Publish(ctx context.Context, serviceURL string, ev middleware.Event) error {
	tr := &api.Transport{Client: s.c.HTTP, MaxAttempts: 1}
	return tr.PostJSON(ctx, api.URL(serviceURL, "/publish"), ev, nil)
}
