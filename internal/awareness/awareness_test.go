package awareness

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/dataformat"
	"repro/internal/integration"
)

var t0 = time.Date(2015, 3, 9, 0, 0, 0, 0, time.UTC)

const b1 = "urn:district:turin/building:b01"
const b2 = "urn:district:turin/building:b02"

// buildModel assembles an AreaModel with a building entity and scripted
// measurements.
func buildModel(t *testing.T, ms []dataformat.Measurement) *integration.AreaModel {
	t.Helper()
	g := integration.NewMerger("turin")
	e := dataformat.Entity{URI: b1, Kind: dataformat.EntityBuilding, Name: "B1"}
	e.SetProp("floorArea.m2", "200", "float")
	g.AddEntity("bim", e)
	g.AddMeasurements("dev", ms)
	return g.Result()
}

func temp(dev string, minute int, v float64) dataformat.Measurement {
	return dataformat.Measurement{
		Device: dev, Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
		Value: v, Timestamp: t0.Add(time.Duration(minute) * time.Minute),
	}
}

func power(dev string, minute int, w float64) dataformat.Measurement {
	return dataformat.Measurement{
		Device: dev, Quantity: dataformat.PowerActive, Unit: dataformat.Watt,
		Value: w, Timestamp: t0.Add(time.Duration(minute) * time.Minute),
	}
}

func TestComfortIndex(t *testing.T) {
	d1 := b1 + "/device:t1"
	d2 := b1 + "/device:t2"
	model := buildModel(t, []dataformat.Measurement{
		temp(d1, 0, 22), temp(d1, 1, 23), temp(d1, 2, 21), temp(d1, 3, 24), // all in band
		temp(d2, 0, 18), temp(d2, 1, 19), temp(d2, 2, 22), temp(d2, 3, 27), // 1 of 4 in band
	})
	c, err := ComfortIndex(model, "", DefaultComfort)
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples != 8 {
		t.Errorf("Samples = %d", c.Samples)
	}
	if math.Abs(c.InBand-5.0/8) > 1e-9 {
		t.Errorf("InBand = %v, want 0.625", c.InBand)
	}
	if c.WorstDevice != d2 || math.Abs(c.WorstInBand-0.25) > 1e-9 {
		t.Errorf("worst = %s %v", c.WorstDevice, c.WorstInBand)
	}
}

func TestComfortIndexScope(t *testing.T) {
	model := buildModel(t, []dataformat.Measurement{
		temp(b1+"/device:t1", 0, 22),
		temp(b2+"/device:t1", 0, 5),
	})
	c, err := ComfortIndex(model, b1, DefaultComfort)
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples != 1 || c.InBand != 1 {
		t.Errorf("scoped comfort = %+v", c)
	}
	if _, err := ComfortIndex(model, "urn:ghost", DefaultComfort); !errors.Is(err, ErrNoData) {
		t.Errorf("empty scope: %v", err)
	}
}

func TestComfortIndexHumidity(t *testing.T) {
	dev := b1 + "/device:h1"
	model := buildModel(t, []dataformat.Measurement{
		{Device: dev, Quantity: dataformat.Humidity, Unit: dataformat.Percent, Value: 50, Timestamp: t0},
		{Device: dev, Quantity: dataformat.Humidity, Unit: dataformat.Percent, Value: 90, Timestamp: t0.Add(time.Minute)},
		// CO2 is not a comfort quantity here: ignored.
		{Device: dev, Quantity: dataformat.CO2, Unit: dataformat.PPM, Value: 5000, Timestamp: t0},
	})
	c, err := ComfortIndex(model, "", DefaultComfort)
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples != 2 || c.InBand != 0.5 {
		t.Errorf("humidity comfort = %+v", c)
	}
}

func TestEnergyUseIntensity(t *testing.T) {
	dev := b1 + "/device:p1"
	// Constant 1000 W over 60 minutes = 1000 Wh; area 200 m2 -> 5 Wh/m2.
	var ms []dataformat.Measurement
	for i := 0; i <= 60; i += 10 {
		ms = append(ms, power(dev, i, 1000))
	}
	model := buildModel(t, ms)
	eui, err := EnergyUseIntensity(model, b1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eui.EnergyWh-1000) > 1e-9 {
		t.Errorf("EnergyWh = %v, want 1000", eui.EnergyWh)
	}
	if math.Abs(eui.WhPerM2-5) > 1e-9 {
		t.Errorf("WhPerM2 = %v, want 5", eui.WhPerM2)
	}
	if eui.Window != time.Hour {
		t.Errorf("Window = %v", eui.Window)
	}
}

func TestEnergyUseIntensityErrors(t *testing.T) {
	model := buildModel(t, nil)
	if _, err := EnergyUseIntensity(model, b1); !errors.Is(err, ErrNoData) {
		t.Errorf("no power data: %v", err)
	}
	if _, err := EnergyUseIntensity(model, "urn:ghost"); err == nil {
		t.Error("unknown building accepted")
	}
	// A building without the BIM floor-area property.
	g := integration.NewMerger("turin")
	g.AddEntity("gis", dataformat.Entity{URI: b1, Kind: dataformat.EntityBuilding})
	if _, err := EnergyUseIntensity(g.Result(), b1); err == nil {
		t.Error("missing floor area accepted")
	}
}

func TestEvaluateRules(t *testing.T) {
	d1 := b1 + "/device:t1"
	d2 := b1 + "/device:p1"
	model := buildModel(t, []dataformat.Measurement{
		temp(d1, 0, 22), temp(d1, 5, 29), // latest 29: above 28
		power(d2, 0, 500), power(d2, 5, 3500), // latest 3500: above 3000
	})
	rules := []Rule{
		{Name: "overheat", Quantity: dataformat.Temperature, Above: Float(28), Severity: SeverityWarning},
		{Name: "freeze", Quantity: dataformat.Temperature, Below: Float(5), Severity: SeverityCritical},
		{Name: "overload", Quantity: dataformat.PowerActive, Above: Float(3000), Severity: SeverityCritical},
	}
	alerts := Evaluate(model, rules)
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v", alerts)
	}
	// Critical first.
	if alerts[0].Rule != "overload" || alerts[0].Severity != SeverityCritical {
		t.Errorf("first alert = %+v", alerts[0])
	}
	if alerts[1].Rule != "overheat" || alerts[1].Value != 29 {
		t.Errorf("second alert = %+v", alerts[1])
	}
}

func TestEvaluateScopeAndBelow(t *testing.T) {
	model := buildModel(t, []dataformat.Measurement{
		temp(b1+"/device:t1", 0, 2),
		temp(b2+"/device:t1", 0, 2),
	})
	rules := []Rule{{
		Name: "freeze", Quantity: dataformat.Temperature,
		Below: Float(5), Scope: b1, Severity: SeverityCritical,
	}}
	alerts := Evaluate(model, rules)
	if len(alerts) != 1 || alerts[0].Device != b1+"/device:t1" {
		t.Fatalf("scoped alerts = %+v", alerts)
	}
	if alerts[0].Limit != 5 {
		t.Errorf("limit = %v", alerts[0].Limit)
	}
}

func TestConsumptionProfile(t *testing.T) {
	dev := b1 + "/device:p1"
	var ms []dataformat.Measurement
	// 1000 W during hour 0, 2000 W during hour 13.
	for i := 0; i < 6; i++ {
		ms = append(ms, power(dev, i*10, 1000))
		ms = append(ms, power(dev, 13*60+i*10, 2000))
	}
	model := buildModel(t, ms)
	p, err := ConsumptionProfile(model, "", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.MeanPowerW) != 24 {
		t.Fatalf("buckets = %d", len(p.MeanPowerW))
	}
	if !p.Present[0] || p.MeanPowerW[0] != 1000 {
		t.Errorf("bucket 0 = %v (present %v)", p.MeanPowerW[0], p.Present[0])
	}
	if !p.Present[13] || p.MeanPowerW[13] != 2000 {
		t.Errorf("bucket 13 = %v", p.MeanPowerW[13])
	}
	if p.Present[5] {
		t.Error("empty bucket marked present")
	}
	at, w := p.Peak()
	if at != 13*time.Hour || w != 2000 {
		t.Errorf("Peak = %v %v", at, w)
	}
}

func TestConsumptionProfileErrors(t *testing.T) {
	model := buildModel(t, nil)
	if _, err := ConsumptionProfile(model, "", time.Hour); !errors.Is(err, ErrNoData) {
		t.Errorf("no data: %v", err)
	}
	if _, err := ConsumptionProfile(model, "", 0); err == nil {
		t.Error("zero bucket accepted")
	}
	if _, err := ConsumptionProfile(model, "", 48*time.Hour); err == nil {
		t.Error("oversized bucket accepted")
	}
}

func TestProfilePeakEmpty(t *testing.T) {
	p := Profile{BucketWidth: time.Hour, MeanPowerW: make([]float64, 24), Present: make([]bool, 24)}
	if at, w := p.Peak(); at != 0 || w != 0 {
		t.Errorf("empty peak = %v %v", at, w)
	}
}
