// Package awareness computes the end-user-facing figures the paper's
// introduction motivates the infrastructure with: "(i) to profile energy
// consumption, (ii) to promote user awareness, and (iii) to optimize the
// demand response process" (§I). It consumes the comprehensive AreaModel
// the integration engine produces and derives consumption profiles,
// comfort indices, energy-use intensity, and threshold alerts — the
// feedback loop that "increases user awareness" (§IV).
package awareness

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/dataformat"
	"repro/internal/integration"
)

// ComfortBand is the acceptable environmental envelope.
type ComfortBand struct {
	TempMin, TempMax float64 // degC
	HumMin, HumMax   float64 // percent
}

// DefaultComfort is the EN 15251 category-II-ish band used when the
// caller does not specify one.
var DefaultComfort = ComfortBand{TempMin: 20, TempMax: 26, HumMin: 30, HumMax: 70}

// Comfort summarizes how well an entity's spaces stay inside the band.
type Comfort struct {
	// Samples is the number of comfort-relevant samples considered.
	Samples int
	// InBand is the fraction of samples inside the band (0..1).
	InBand float64
	// WorstDevice is the device with the lowest in-band fraction.
	WorstDevice string
	// WorstInBand is that device's in-band fraction.
	WorstInBand float64
}

// ErrNoData reports a KPI with no supporting measurements.
var ErrNoData = errors.New("awareness: no supporting measurements")

// ComfortIndex computes the comfort statistics over every temperature
// and humidity measurement in the model whose device URI starts with
// scope (pass "" for the whole model).
func ComfortIndex(model *integration.AreaModel, scope string, band ComfortBand) (Comfort, error) {
	type devAcc struct{ in, total int }
	perDevice := make(map[string]*devAcc)
	var in, total int
	for _, m := range model.Measurements {
		if scope != "" && !hasPrefix(m.Device, scope) {
			continue
		}
		var ok bool
		switch m.Quantity {
		case dataformat.Temperature:
			ok = m.Value >= band.TempMin && m.Value <= band.TempMax
		case dataformat.Humidity:
			ok = m.Value >= band.HumMin && m.Value <= band.HumMax
		default:
			continue
		}
		acc := perDevice[m.Device]
		if acc == nil {
			acc = &devAcc{}
			perDevice[m.Device] = acc
		}
		acc.total++
		total++
		if ok {
			acc.in++
			in++
		}
	}
	if total == 0 {
		return Comfort{}, ErrNoData
	}
	c := Comfort{Samples: total, InBand: float64(in) / float64(total), WorstInBand: 2}
	for dev, acc := range perDevice {
		frac := float64(acc.in) / float64(acc.total)
		if frac < c.WorstInBand || (frac == c.WorstInBand && dev < c.WorstDevice) {
			c.WorstInBand = frac
			c.WorstDevice = dev
		}
	}
	return c, nil
}

// EUI is a building's energy-use intensity over an observation window.
type EUI struct {
	BuildingURI string
	EnergyWh    float64
	FloorAreaM2 float64
	// WhPerM2 is the headline figure.
	WhPerM2 float64
	Window  time.Duration
}

// EnergyUseIntensity derives a building's EUI from the model: active
// power samples of the building's devices integrated over time (trapezoid
// on the sample timeline), divided by the BIM-reported floor area.
func EnergyUseIntensity(model *integration.AreaModel, buildingURI string) (EUI, error) {
	b, ok := model.Entity(buildingURI)
	if !ok {
		return EUI{}, fmt.Errorf("awareness: building %s not in model", buildingURI)
	}
	areaStr, ok := b.Prop("floorArea.m2")
	if !ok {
		return EUI{}, fmt.Errorf("awareness: building %s lacks floorArea.m2 (no BIM view merged)", buildingURI)
	}
	area, err := strconv.ParseFloat(areaStr, 64)
	if err != nil || area <= 0 {
		return EUI{}, fmt.Errorf("awareness: building %s bad floor area %q", buildingURI, areaStr)
	}
	// Collect the building's power samples, per device, time-ordered
	// (the model keeps them sorted).
	type series struct {
		samples []dataformat.Measurement
	}
	perDevice := map[string]*series{}
	for _, m := range model.Measurements {
		if m.Quantity != dataformat.PowerActive || !hasPrefix(m.Device, buildingURI) {
			continue
		}
		s := perDevice[m.Device]
		if s == nil {
			s = &series{}
			perDevice[m.Device] = s
		}
		s.samples = append(s.samples, m)
	}
	if len(perDevice) == 0 {
		return EUI{}, ErrNoData
	}
	var energyWh float64
	var first, last time.Time
	for _, s := range perDevice {
		for i := 1; i < len(s.samples); i++ {
			dt := s.samples[i].Timestamp.Sub(s.samples[i-1].Timestamp).Hours()
			if dt <= 0 {
				continue
			}
			energyWh += (s.samples[i].Value + s.samples[i-1].Value) / 2 * dt
		}
		if first.IsZero() || s.samples[0].Timestamp.Before(first) {
			first = s.samples[0].Timestamp
		}
		if end := s.samples[len(s.samples)-1].Timestamp; end.After(last) {
			last = end
		}
	}
	return EUI{
		BuildingURI: buildingURI,
		EnergyWh:    energyWh,
		FloorAreaM2: area,
		WhPerM2:     energyWh / area,
		Window:      last.Sub(first),
	}, nil
}

// Severity grades alerts.
type Severity string

// Alert severities.
const (
	SeverityInfo     Severity = "info"
	SeverityWarning  Severity = "warning"
	SeverityCritical Severity = "critical"
)

// Rule is one threshold rule evaluated against the latest value of each
// matching series.
type Rule struct {
	// Name labels the rule in alerts.
	Name string
	// Quantity selects the series the rule applies to.
	Quantity dataformat.Quantity
	// Scope restricts the rule to device URIs with this prefix ("" = all).
	Scope string
	// Above/Below fire when the latest value crosses them. Use one or
	// both (both: fire outside the [Below, Above] band is NOT the
	// semantics — Above fires when value > Above, Below when value < Below).
	Above, Below *float64
	// Severity of the produced alerts.
	Severity Severity
}

// Alert is one rule violation.
type Alert struct {
	Rule     string              `json:"rule"`
	Severity Severity            `json:"severity"`
	Device   string              `json:"device"`
	Quantity dataformat.Quantity `json:"quantity"`
	Value    float64             `json:"value"`
	Limit    float64             `json:"limit"`
	At       time.Time           `json:"at"`
}

// Float returns a *float64 literal; a convenience for rule construction.
func Float(v float64) *float64 { return &v }

// Evaluate runs the rules against the latest value of every series in
// the model and returns the alerts sorted by (severity, device).
func Evaluate(model *integration.AreaModel, rules []Rule) []Alert {
	var alerts []Alert
	for _, s := range model.Summarize() {
		for _, r := range rules {
			if r.Quantity != s.Quantity {
				continue
			}
			if r.Scope != "" && !hasPrefix(s.Device, r.Scope) {
				continue
			}
			if r.Above != nil && s.Latest > *r.Above {
				alerts = append(alerts, Alert{
					Rule: r.Name, Severity: r.Severity, Device: s.Device,
					Quantity: s.Quantity, Value: s.Latest, Limit: *r.Above, At: s.LatestAt,
				})
			}
			if r.Below != nil && s.Latest < *r.Below {
				alerts = append(alerts, Alert{
					Rule: r.Name, Severity: r.Severity, Device: s.Device,
					Quantity: s.Quantity, Value: s.Latest, Limit: *r.Below, At: s.LatestAt,
				})
			}
		}
	}
	sort.Slice(alerts, func(i, j int) bool {
		if alerts[i].Severity != alerts[j].Severity {
			return severityRank(alerts[i].Severity) > severityRank(alerts[j].Severity)
		}
		if alerts[i].Device != alerts[j].Device {
			return alerts[i].Device < alerts[j].Device
		}
		return alerts[i].Rule < alerts[j].Rule
	})
	return alerts
}

func severityRank(s Severity) int {
	switch s {
	case SeverityCritical:
		return 2
	case SeverityWarning:
		return 1
	default:
		return 0
	}
}

// Profile is a consumption profile: mean power per bucket of the day.
type Profile struct {
	BucketWidth time.Duration
	// MeanPowerW holds one mean per bucket index (time.Duration since
	// midnight / BucketWidth); buckets with no samples are NaN-free and
	// simply absent from Present.
	MeanPowerW []float64
	Present    []bool
}

// ConsumptionProfile folds the model's power samples into a daily
// profile with the given bucket width — the "energy consumption trends"
// visualization input of the paper's §I.
func ConsumptionProfile(model *integration.AreaModel, scope string, bucket time.Duration) (Profile, error) {
	if bucket <= 0 || bucket > 24*time.Hour {
		return Profile{}, fmt.Errorf("awareness: bad bucket width %v", bucket)
	}
	n := int(24 * time.Hour / bucket)
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, m := range model.Measurements {
		if m.Quantity != dataformat.PowerActive {
			continue
		}
		if scope != "" && !hasPrefix(m.Device, scope) {
			continue
		}
		sinceMidnight := m.Timestamp.Sub(m.Timestamp.Truncate(24 * time.Hour))
		idx := int(sinceMidnight / bucket)
		if idx >= n {
			idx = n - 1
		}
		sums[idx] += m.Value
		counts[idx]++
	}
	p := Profile{BucketWidth: bucket, MeanPowerW: make([]float64, n), Present: make([]bool, n)}
	any := false
	for i := range sums {
		if counts[i] > 0 {
			p.MeanPowerW[i] = sums[i] / float64(counts[i])
			p.Present[i] = true
			any = true
		}
	}
	if !any {
		return Profile{}, ErrNoData
	}
	return p, nil
}

// Peak returns the highest present bucket's mean power and its start
// offset since midnight.
func (p *Profile) Peak() (time.Duration, float64) {
	best := -1
	for i, present := range p.Present {
		if present && (best < 0 || p.MeanPowerW[i] > p.MeanPowerW[best]) {
			best = i
		}
	}
	if best < 0 {
		return 0, 0
	}
	return time.Duration(best) * p.BucketWidth, p.MeanPowerW[best]
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
