package gis

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Turin city centre, used across the tests.
var turin = Point{Lat: 45.0703, Lon: 7.6869}

func buildingAt(id string, lat, lon, sizeDeg float64) Feature {
	return Feature{
		ID:   id,
		Kind: FeatureBuilding,
		Name: "Building " + id,
		Footprint: []Point{
			{lat, lon}, {lat + sizeDeg, lon}, {lat + sizeDeg, lon + sizeDeg}, {lat, lon + sizeDeg},
		},
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	milan := Point{Lat: 45.4642, Lon: 9.19}
	d := Haversine(turin, milan)
	if d < 115000 || d > 130000 { // ~125 km
		t.Errorf("Turin-Milan = %v m, want ~125 km", d)
	}
	if Haversine(turin, turin) != 0 {
		t.Error("zero distance expected")
	}
}

func TestBBoxBasics(t *testing.T) {
	b := BBox{MinLat: 45, MinLon: 7, MaxLat: 46, MaxLon: 8}
	if !b.Valid() {
		t.Error("valid box rejected")
	}
	if !(BBox{MinLat: 46, MinLon: 7, MaxLat: 45, MaxLon: 8}).Valid() == false {
		t.Error("inverted box accepted")
	}
	if !b.Contains(turin) {
		t.Error("Contains(turin) = false")
	}
	if b.Contains(Point{Lat: 44, Lon: 7.5}) {
		t.Error("Contains outside point")
	}
	exp := b.Expand(Point{Lat: 44, Lon: 9})
	if exp.MinLat != 44 || exp.MaxLon != 9 {
		t.Errorf("Expand = %+v", exp)
	}
	if !b.Intersects(BBox{MinLat: 45.5, MinLon: 7.5, MaxLat: 47, MaxLon: 9}) {
		t.Error("overlapping boxes reported disjoint")
	}
	if b.Intersects(BBox{MinLat: 50, MinLon: 7, MaxLat: 51, MaxLon: 8}) {
		t.Error("disjoint boxes reported overlapping")
	}
}

func TestFeatureCentroidAndBounds(t *testing.T) {
	f := buildingAt("b1", 45.0, 7.0, 0.002)
	c := f.Centroid()
	if math.Abs(c.Lat-45.001) > 1e-9 || math.Abs(c.Lon-7.001) > 1e-9 {
		t.Errorf("Centroid = %+v", c)
	}
	b := f.Bounds()
	if b.MinLat != 45.0 || b.MaxLat != 45.002 {
		t.Errorf("Bounds = %+v", b)
	}
	empty := Feature{}
	if empty.Centroid() != (Point{}) {
		t.Error("empty centroid")
	}
}

func TestStoreAddGetRemove(t *testing.T) {
	s := NewStore(0)
	f := buildingAt("b1", 45.07, 7.68, 0.001)
	if err := s.Add(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(f); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate add: %v", err)
	}
	if err := s.Add(Feature{ID: "empty"}); !errors.Is(err, ErrEmptyFootprint) {
		t.Errorf("empty footprint: %v", err)
	}
	got, err := s.Get("b1")
	if err != nil || got.Name != "Building b1" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if err := s.Remove("b1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Remove: %v", err)
	}
	if err := s.Remove("b1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Remove: %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestQueryBBox(t *testing.T) {
	s := NewStore(0)
	// A 3x3 block of buildings 0.01 degrees apart.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			id := fmt.Sprintf("b%d%d", i, j)
			if err := s.Add(buildingAt(id, 45.0+float64(i)*0.01, 7.0+float64(j)*0.01, 0.002)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Box covering only the bottom-left 2x2.
	got, err := s.QueryBBox(BBox{MinLat: 44.999, MinLon: 6.999, MaxLat: 45.013, MaxLon: 7.013})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		ids := make([]string, len(got))
		for i, f := range got {
			ids[i] = f.ID
		}
		t.Fatalf("got %d features %v, want 4", len(got), ids)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatal("results not sorted by ID")
		}
	}
	if _, err := s.QueryBBox(BBox{MinLat: 1, MaxLat: 0, MinLon: 0, MaxLon: 1}); !errors.Is(err, ErrBadBBox) {
		t.Errorf("bad box: %v", err)
	}
}

func TestQueryBBoxFeatureSpanningCells(t *testing.T) {
	s := NewStore(0.005)
	// Footprint much larger than one cell.
	big := Feature{ID: "campus", Kind: FeatureArea, Footprint: []Point{
		{45.00, 7.00}, {45.03, 7.00}, {45.03, 7.03}, {45.00, 7.03},
	}}
	if err := s.Add(big); err != nil {
		t.Fatal(err)
	}
	// Query a box in the middle of the campus: must still find it once.
	got, err := s.QueryBBox(BBox{MinLat: 45.014, MinLon: 7.014, MaxLat: 45.016, MaxLon: 7.016})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "campus" {
		t.Fatalf("got %+v", got)
	}
}

func TestQueryRadius(t *testing.T) {
	s := NewStore(0)
	_ = s.Add(Feature{ID: "near", Kind: FeatureDevice, Footprint: []Point{{45.0705, 7.6871}}})
	_ = s.Add(Feature{ID: "mid", Kind: FeatureDevice, Footprint: []Point{{45.0750, 7.6920}}})
	_ = s.Add(Feature{ID: "far", Kind: FeatureDevice, Footprint: []Point{{45.2000, 7.9000}}})

	got, err := s.QueryRadius(turin, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "near" || got[1].ID != "mid" {
		ids := make([]string, len(got))
		for i, f := range got {
			ids[i] = f.ID
		}
		t.Fatalf("radius hits = %v, want [near mid] sorted by distance", ids)
	}
	if _, err := s.QueryRadius(turin, 0); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestByKind(t *testing.T) {
	s := NewStore(0)
	_ = s.Add(buildingAt("b1", 45, 7, 0.001))
	_ = s.Add(Feature{ID: "d1", Kind: FeatureDevice, Footprint: []Point{{45, 7}}})
	_ = s.Add(Feature{ID: "d2", Kind: FeatureDevice, Footprint: []Point{{45.001, 7}}})
	if got := s.ByKind(FeatureDevice); len(got) != 2 || got[0].ID != "d1" {
		t.Errorf("ByKind(device) = %+v", got)
	}
	if got := s.ByKind(FeatureNetwork); len(got) != 0 {
		t.Errorf("ByKind(network) = %+v", got)
	}
}

func TestStoreCopySemantics(t *testing.T) {
	s := NewStore(0)
	f := buildingAt("b1", 45, 7, 0.001)
	_ = s.Add(f)
	f.Footprint[0].Lat = 0 // mutate caller's slice
	got, _ := s.Get("b1")
	if got.Footprint[0].Lat != 45 {
		t.Error("store aliases caller's footprint slice")
	}
}

// Property: QueryBBox agrees with a linear scan for random stores/boxes.
func TestQueryBBoxMatchesLinearScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(0.01)
		var all []Feature
		for i := 0; i < 50; i++ {
			ft := Feature{
				ID:   fmt.Sprintf("f%d", i),
				Kind: FeatureDevice,
				Footprint: []Point{{
					45 + rng.Float64()*0.2,
					7 + rng.Float64()*0.2,
				}},
			}
			if err := s.Add(ft); err != nil {
				return false
			}
			all = append(all, ft)
		}
		for trial := 0; trial < 10; trial++ {
			lat := 45 + rng.Float64()*0.15
			lon := 7 + rng.Float64()*0.15
			box := BBox{MinLat: lat, MinLon: lon, MaxLat: lat + rng.Float64()*0.05, MaxLon: lon + rng.Float64()*0.05}
			got, err := s.QueryBBox(box)
			if err != nil {
				return false
			}
			want := 0
			for _, ft := range all {
				if ft.Bounds().Intersects(box) {
					want++
				}
			}
			if len(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLargeFeatureBypassesGrid(t *testing.T) {
	s := NewStore(0.005)
	// A footprint spanning several degrees: far more cells than
	// maxCellsPerFeature; it must land in the linear side list.
	continentwide := Feature{ID: "region", Kind: FeatureArea, Footprint: []Point{
		{Lat: 40, Lon: 0}, {Lat: 50, Lon: 10},
	}}
	if err := s.Add(continentwide); err != nil {
		t.Fatal(err)
	}
	small := buildingAt("b1", 45.07, 7.68, 0.001)
	if err := s.Add(small); err != nil {
		t.Fatal(err)
	}
	// A small box inside the region must find both features.
	got, err := s.QueryBBox(BBox{MinLat: 45.069, MinLon: 7.679, MaxLat: 45.072, MaxLon: 7.683})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		ids := make([]string, len(got))
		for i, f := range got {
			ids[i] = f.ID
		}
		t.Fatalf("hits = %v, want [b1 region]", ids)
	}
	// Remove the large feature; only the building remains.
	if err := s.Remove("region"); err != nil {
		t.Fatal(err)
	}
	got, _ = s.QueryBBox(BBox{MinLat: 45.069, MinLon: 7.679, MaxLat: 45.072, MaxLon: 7.683})
	if len(got) != 1 || got[0].ID != "b1" {
		t.Fatalf("after remove: %+v", got)
	}
}

func TestWholeWorldQueryLinearFallback(t *testing.T) {
	s := NewStore(0.005)
	for i := 0; i < 10; i++ {
		_ = s.Add(buildingAt(fmt.Sprintf("b%d", i), 45+float64(i)*0.01, 7, 0.001))
	}
	got, err := s.QueryBBox(BBox{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("whole world = %d features", len(got))
	}
}
