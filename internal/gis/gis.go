// Package gis implements the district's Geographic Information System
// database: a store of georeferenced features (building footprints,
// network routes, device positions) with spatial queries. The paper's
// GIS databases hold "georeferenced information about buildings in the
// district"; the master node's ontology maps entities onto them and
// end-user applications query by area.
//
// The store indexes features in a uniform geographic grid, supports
// bounding-box and radius queries over WGS-84 coordinates, and exports
// features through the GIS Database-proxy in the common data format.
package gis

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Point is a WGS-84 coordinate.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// BBox is a latitude/longitude axis-aligned bounding box.
type BBox struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// Valid reports whether the box is well formed.
func (b BBox) Valid() bool {
	return b.MinLat <= b.MaxLat && b.MinLon <= b.MaxLon &&
		b.MinLat >= -90 && b.MaxLat <= 90 &&
		b.MinLon >= -180 && b.MaxLon <= 180
}

// Contains reports whether the point falls inside the box.
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat && p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Expand grows the box to include p.
func (b BBox) Expand(p Point) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// Intersects reports whether two boxes overlap.
func (b BBox) Intersects(o BBox) bool {
	return b.MinLat <= o.MaxLat && o.MinLat <= b.MaxLat &&
		b.MinLon <= o.MaxLon && o.MinLon <= b.MaxLon
}

// earthRadiusM is the mean Earth radius in metres.
const earthRadiusM = 6371000.0

// Haversine returns the great-circle distance between two points in
// metres.
func Haversine(a, b Point) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusM * math.Asin(math.Min(1, math.Sqrt(s)))
}

// FeatureKind classifies GIS features.
type FeatureKind string

// Feature kinds stored in the district GIS.
const (
	FeatureBuilding FeatureKind = "building"
	FeatureNetwork  FeatureKind = "network"
	FeatureDevice   FeatureKind = "device"
	FeatureArea     FeatureKind = "area"
)

// Feature is one georeferenced entry.
type Feature struct {
	// ID is the feature identifier, conventionally the ontology URI of
	// the entity it georeferences.
	ID string
	// Kind classifies the feature.
	Kind FeatureKind
	// Name is a human-readable label.
	Name string
	// Footprint is the feature geometry: one point for devices, a
	// polygon ring for buildings and areas, a polyline for networks.
	Footprint []Point
	// Attributes carries free-form GIS attributes.
	Attributes map[string]string
}

// Centroid returns the arithmetic centre of the footprint.
func (f *Feature) Centroid() Point {
	if len(f.Footprint) == 0 {
		return Point{}
	}
	var lat, lon float64
	for _, p := range f.Footprint {
		lat += p.Lat
		lon += p.Lon
	}
	n := float64(len(f.Footprint))
	return Point{Lat: lat / n, Lon: lon / n}
}

// Bounds returns the bounding box of the footprint.
func (f *Feature) Bounds() BBox {
	if len(f.Footprint) == 0 {
		return BBox{}
	}
	b := BBox{MinLat: f.Footprint[0].Lat, MaxLat: f.Footprint[0].Lat,
		MinLon: f.Footprint[0].Lon, MaxLon: f.Footprint[0].Lon}
	for _, p := range f.Footprint[1:] {
		b = b.Expand(p)
	}
	return b
}

// Errors reported by the store.
var (
	ErrEmptyFootprint = errors.New("gis: feature without footprint")
	ErrDuplicateID    = errors.New("gis: duplicate feature id")
	ErrBadBBox        = errors.New("gis: malformed bounding box")
	ErrNotFound       = errors.New("gis: feature not found")
)

// cellKey addresses one grid cell.
type cellKey struct{ row, col int32 }

// Store is the spatially indexed feature database.
type Store struct {
	cellDeg float64

	mu       sync.RWMutex
	features map[string]*Feature
	grid     map[cellKey][]string
	// large holds features whose bounds cover more cells than
	// maxCellsPerFeature; they are scanned linearly instead of indexed.
	large map[string]struct{}
}

// maxCellsPerFeature bounds the grid entries one feature may occupy.
const maxCellsPerFeature = 4096

// NewStore creates a store with the given grid cell size in degrees.
// Zero picks the default (0.005 degrees, roughly 500 m of latitude —
// city-block granularity).
func NewStore(cellDeg float64) *Store {
	if cellDeg <= 0 {
		cellDeg = 0.005
	}
	return &Store{
		cellDeg:  cellDeg,
		features: make(map[string]*Feature),
		grid:     make(map[cellKey][]string),
		large:    make(map[string]struct{}),
	}
}

func (s *Store) cellOf(p Point) cellKey {
	return cellKey{
		row: int32(math.Floor(p.Lat / s.cellDeg)),
		col: int32(math.Floor(p.Lon / s.cellDeg)),
	}
}

// cellsOf enumerates the grid cells a bounding box covers.
func (s *Store) cellsOf(b BBox) []cellKey {
	lo := s.cellOf(Point{b.MinLat, b.MinLon})
	hi := s.cellOf(Point{b.MaxLat, b.MaxLon})
	out := make([]cellKey, 0, int(hi.row-lo.row+1)*int(hi.col-lo.col+1))
	for r := lo.row; r <= hi.row; r++ {
		for c := lo.col; c <= hi.col; c++ {
			out = append(out, cellKey{r, c})
		}
	}
	return out
}

// Add inserts a feature.
func (s *Store) Add(f Feature) error {
	if len(f.Footprint) == 0 {
		return ErrEmptyFootprint
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.features[f.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateID, f.ID)
	}
	cp := f
	cp.Footprint = append([]Point(nil), f.Footprint...)
	s.features[f.ID] = &cp
	if s.cellCount(cp.Bounds()) > maxCellsPerFeature {
		s.large[f.ID] = struct{}{}
		return nil
	}
	for _, cell := range s.cellsOf(cp.Bounds()) {
		s.grid[cell] = append(s.grid[cell], f.ID)
	}
	return nil
}

// cellCount reports how many grid cells a box covers.
func (s *Store) cellCount(b BBox) int64 {
	lo := s.cellOf(Point{b.MinLat, b.MinLon})
	hi := s.cellOf(Point{b.MaxLat, b.MaxLon})
	return (int64(hi.row-lo.row) + 1) * (int64(hi.col-lo.col) + 1)
}

// Remove deletes a feature by ID.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.features[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(s.features, id)
	if _, isLarge := s.large[id]; isLarge {
		delete(s.large, id)
		return nil
	}
	for _, cell := range s.cellsOf(f.Bounds()) {
		ids := s.grid[cell]
		for i, fid := range ids {
			if fid == id {
				s.grid[cell] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(s.grid[cell]) == 0 {
			delete(s.grid, cell)
		}
	}
	return nil
}

// Get returns a copy of the feature with the given ID.
func (s *Store) Get(id string) (Feature, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.features[id]
	if !ok {
		return Feature{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return *f, nil
}

// QueryBBox returns the features whose bounds intersect the box, sorted
// by ID for determinism. Small boxes walk the grid index; boxes covering
// more cells than there are features (e.g. a whole-world query) fall
// back to a linear scan, which is cheaper than enumerating cells.
func (s *Store) QueryBBox(b BBox) ([]Feature, error) {
	if !b.Valid() {
		return nil, ErrBadBBox
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := s.cellOf(Point{b.MinLat, b.MinLon})
	hi := s.cellOf(Point{b.MaxLat, b.MaxLon})
	cells := (int64(hi.row-lo.row) + 1) * (int64(hi.col-lo.col) + 1)
	var out []Feature
	if cells > int64(len(s.features))+64 {
		for _, f := range s.features {
			if f.Bounds().Intersects(b) {
				out = append(out, *f)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out, nil
	}
	seen := make(map[string]struct{})
	for _, cell := range s.cellsOf(b) {
		for _, id := range s.grid[cell] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			f := s.features[id]
			if f.Bounds().Intersects(b) {
				out = append(out, *f)
			}
		}
	}
	for id := range s.large {
		f := s.features[id]
		if f.Bounds().Intersects(b) {
			out = append(out, *f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// QueryRadius returns the features whose centroid lies within radius
// metres of centre, sorted by distance.
func (s *Store) QueryRadius(centre Point, radiusM float64) ([]Feature, error) {
	if radiusM <= 0 {
		return nil, fmt.Errorf("gis: non-positive radius %v", radiusM)
	}
	// Over-approximate the radius with a degree box, then filter.
	dLat := radiusM / earthRadiusM * 180 / math.Pi
	cos := math.Cos(centre.Lat * math.Pi / 180)
	if cos < 0.01 {
		cos = 0.01
	}
	dLon := dLat / cos
	box := BBox{
		MinLat: centre.Lat - dLat, MaxLat: centre.Lat + dLat,
		MinLon: centre.Lon - dLon, MaxLon: centre.Lon + dLon,
	}
	candidates, err := s.QueryBBox(box)
	if err != nil {
		return nil, err
	}
	type scored struct {
		f Feature
		d float64
	}
	var hits []scored
	for _, f := range candidates {
		if d := Haversine(centre, f.Centroid()); d <= radiusM {
			hits = append(hits, scored{f, d})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	out := make([]Feature, len(hits))
	for i, h := range hits {
		out[i] = h.f
	}
	return out, nil
}

// ByKind returns all features of a kind, sorted by ID.
func (s *Store) ByKind(kind FeatureKind) []Feature {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Feature
	for _, f := range s.features {
		if f.Kind == kind {
			out = append(out, *f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of stored features.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.features)
}
