package dbproxy

import "encoding/json"

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte("{}")
	}
	return b
}
