// Package dbproxy implements the Database-proxy of the paper: one proxy
// per heterogeneous database (BIM, SIM, GIS), each offering "a Web
// Service interface which allows data retrieval and translation from its
// database to an open standard, such as JSON or XML" (§II). The
// databases are never merged; each stays behind its own proxy and the
// end-user application integrates the translated views.
package dbproxy

import (
	"fmt"
	"strconv"

	"repro/internal/bim"
	"repro/internal/dataformat"
	"repro/internal/gis"
	"repro/internal/ontology"
	"repro/internal/sim"
)

// BuildingEntity translates a BIM building into the common format: the
// building as the root entity, storeys and spaces as children, envelope
// elements as space properties and devices as leaf references.
func BuildingEntity(b *bim.Building, district string) dataformat.Entity {
	uri := ontology.EntityURI(district, ontology.KindBuilding, b.ID)
	e := dataformat.Entity{
		URI:  uri,
		Kind: dataformat.EntityBuilding,
		Name: b.Name,
		Location: &dataformat.Location{
			Latitude: b.Lat, Longitude: b.Lon,
		},
	}
	e.SetProp("address", b.Address, "string")
	e.SetProp("yearBuilt", strconv.Itoa(b.YearBuilt), "int")
	e.SetProp("floorArea.m2", formatFloat(b.FloorArea()), "float")
	e.SetProp("heatedVolume.m3", formatFloat(b.HeatedVolume()), "float")
	e.SetProp("envelopeUA.WperK", formatFloat(b.EnvelopeUA()), "float")

	for _, st := range b.Storeys {
		se := dataformat.Entity{
			URI:  uri + "/storey:" + st.ID,
			Kind: dataformat.EntitySpace,
			Name: st.Name,
		}
		se.SetProp("elevation.m", formatFloat(st.Elevation), "float")
		se.SetProp("height.m", formatFloat(st.Height), "float")
		for _, sp := range st.Spaces {
			pe := dataformat.Entity{
				URI:  uri + "/space:" + sp.ID,
				Kind: dataformat.EntitySpace,
				Name: sp.Name,
			}
			pe.SetProp("usage", sp.Usage, "string")
			pe.SetProp("area.m2", formatFloat(sp.Area), "float")
			var ua float64
			for _, el := range sp.Elements {
				ua += el.Area * el.UValue
			}
			pe.SetProp("envelopeUA.WperK", formatFloat(ua), "float")
			for _, d := range sp.Devices {
				pe.Children = append(pe.Children, dataformat.Entity{
					URI: d, Kind: dataformat.EntityDevice,
				})
			}
			se.Children = append(se.Children, pe)
		}
		e.Children = append(e.Children, se)
	}
	return e
}

// NetworkEntity translates a SIM network into the common format with
// nodes and edges as children, annotated with the solved flows.
func NetworkEntity(n *sim.Network, district string) (dataformat.Entity, error) {
	uri := ontology.EntityURI(district, ontology.KindNetwork, n.ID)
	e := dataformat.Entity{
		URI:  uri,
		Kind: dataformat.EntityNetwork,
		Name: n.Name,
	}
	e.SetProp("kind", string(n.Kind), "string")
	e.SetProp("demand.kW", formatFloat(n.TotalDemandKW()), "float")
	sol, err := n.Solve()
	if err != nil {
		return dataformat.Entity{}, fmt.Errorf("dbproxy: solving network %s: %w", n.ID, err)
	}
	e.SetProp("plantOutput.kW", formatFloat(sol.PlantOutputKW), "float")
	e.SetProp("loss.kW", formatFloat(sol.LossKW), "float")
	e.SetProp("efficiency", formatFloat(sol.Efficiency()), "float")

	flowOf := make(map[string]sim.EdgeFlow, len(sol.Flows))
	for _, f := range sol.Flows {
		flowOf[f.EdgeID] = f
	}
	for _, node := range n.Nodes {
		ne := dataformat.Entity{
			URI:  uri + "/node:" + node.ID,
			Kind: dataformat.EntityNode,
			Name: node.Name,
			Location: &dataformat.Location{
				Latitude: node.Lat, Longitude: node.Lon,
			},
		}
		ne.SetProp("role", string(node.Kind), "string")
		if node.Kind == sim.NodeSubstation {
			ne.SetProp("demand.kW", formatFloat(node.DemandKW), "float")
			if node.Building != "" {
				ne.SetProp("servesBuilding", node.Building, "uri")
			}
		}
		e.Children = append(e.Children, ne)
	}
	for _, edge := range n.Edges {
		ee := dataformat.Entity{
			URI:  uri + "/edge:" + edge.ID,
			Kind: dataformat.EntityEdge,
			Name: edge.ID,
		}
		ee.SetProp("parent", edge.Parent, "string")
		ee.SetProp("child", edge.Child, "string")
		ee.SetProp("length.m", formatFloat(edge.LengthM), "float")
		if f, ok := flowOf[edge.ID]; ok {
			ee.SetProp("flow.kW", formatFloat(f.FlowKW), "float")
			ee.SetProp("loss.kW", formatFloat(f.LossKW), "float")
		}
		e.Children = append(e.Children, ee)
	}
	return e, nil
}

// FeatureEntity translates a GIS feature into the common format.
func FeatureEntity(f *gis.Feature) dataformat.Entity {
	c := f.Centroid()
	e := dataformat.Entity{
		URI:      f.ID,
		Kind:     entityKindOfFeature(f.Kind),
		Name:     f.Name,
		Location: &dataformat.Location{Latitude: c.Lat, Longitude: c.Lon},
	}
	b := f.Bounds()
	e.SetProp("bounds", fmt.Sprintf("%g,%g,%g,%g", b.MinLat, b.MinLon, b.MaxLat, b.MaxLon), "bbox")
	e.SetProp("vertices", strconv.Itoa(len(f.Footprint)), "int")
	for k, v := range f.Attributes {
		e.SetProp("attr."+k, v, "string")
	}
	return e
}

func entityKindOfFeature(k gis.FeatureKind) dataformat.EntityKind {
	switch k {
	case gis.FeatureBuilding:
		return dataformat.EntityBuilding
	case gis.FeatureNetwork:
		return dataformat.EntityNetwork
	case gis.FeatureDevice:
		return dataformat.EntityDevice
	default:
		return dataformat.EntityKind("area")
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
