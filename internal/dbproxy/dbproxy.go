package dbproxy

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/bim"
	"repro/internal/dataformat"
	"repro/internal/gis"
	"repro/internal/ontology"
	"repro/internal/proxyhttp"
	"repro/internal/registry"
	"repro/internal/sim"
)

// common carries the plumbing all Database-proxies share.
type common struct {
	srv proxyhttp.Server
	reg *proxyhttp.Registrar
}

// run starts the web service and, when masterURL is set, registration.
func (c *common) run(addr, masterURL string, handler http.Handler, r registry.Registration) (string, error) {
	bound, err := c.srv.Serve(addr, handler)
	if err != nil {
		return "", err
	}
	if masterURL != "" {
		r.BaseURL = "http://" + bound + "/"
		c.reg = &proxyhttp.Registrar{MasterURL: masterURL, Registration: r}
		if err := c.reg.Start(); err != nil {
			c.srv.Close()
			return "", err
		}
	}
	return bound, nil
}

// close stops registration and the web service.
func (c *common) close() {
	if c.reg != nil {
		c.reg.Stop()
	}
	c.srv.Close()
}

// BIMProxy serves one building's information model.
type BIMProxy struct {
	common
	district string
	mu       sync.RWMutex
	building *bim.Building
}

// NewBIMProxy wraps a decoded building model.
func NewBIMProxy(district string, b *bim.Building) (*BIMProxy, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &BIMProxy{district: district, building: b}, nil
}

// EntityURI returns the building's ontology URI.
func (p *BIMProxy) EntityURI() string {
	return ontology.EntityURI(p.district, ontology.KindBuilding, p.building.ID)
}

// Handler returns the proxy's web interface:
//
//	GET /model     the translated building (entity document, JSON/XML)
//	GET /devices   device URIs placed in the building
//	GET /healthz
func (p *BIMProxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/model", func(w http.ResponseWriter, r *http.Request) {
		p.mu.RLock()
		e := BuildingEntity(p.building, p.district)
		p.mu.RUnlock()
		proxyhttp.WriteDoc(w, r, dataformat.NewEntityDoc(e))
	})
	mux.HandleFunc("/devices", func(w http.ResponseWriter, r *http.Request) {
		p.mu.RLock()
		uris := p.building.DeviceURIs()
		p.mu.RUnlock()
		entities := make([]dataformat.Entity, len(uris))
		for i, uri := range uris {
			entities[i] = dataformat.Entity{URI: uri, Kind: dataformat.EntityDevice}
		}
		proxyhttp.WriteDoc(w, r, dataformat.NewEntitySetDoc(entities))
	})
	mux.HandleFunc("/healthz", healthz)
	return mux
}

// Run starts the proxy and registers with the master when given.
func (p *BIMProxy) Run(addr, masterURL string) (string, error) {
	return p.run(addr, masterURL, p.Handler(), registry.Registration{
		ID:        "bim:" + p.building.ID,
		Kind:      registry.KindBIM,
		EntityURI: p.EntityURI(),
	})
}

// Close stops the proxy.
func (p *BIMProxy) Close() { p.close() }

// SIMProxy serves one distribution network's model.
type SIMProxy struct {
	common
	district string
	mu       sync.RWMutex
	network  *sim.Network
}

// NewSIMProxy wraps a decoded network model.
func NewSIMProxy(district string, n *sim.Network) (*SIMProxy, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &SIMProxy{district: district, network: n}, nil
}

// EntityURI returns the network's ontology URI.
func (p *SIMProxy) EntityURI() string {
	return ontology.EntityURI(p.district, ontology.KindNetwork, p.network.ID)
}

// SetDemand updates a substation demand (used by scenario drivers).
func (p *SIMProxy) SetDemand(nodeID string, kw float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.network.SetDemand(nodeID, kw)
}

// Handler returns the proxy's web interface:
//
//	GET /model      the translated network with solved flows
//	GET /solution   the raw steady-state solution (JSON)
//	GET /healthz
func (p *SIMProxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/model", func(w http.ResponseWriter, r *http.Request) {
		p.mu.RLock()
		e, err := NetworkEntity(p.network, p.district)
		p.mu.RUnlock()
		if err != nil {
			proxyhttp.Error(w, http.StatusInternalServerError, err)
			return
		}
		proxyhttp.WriteDoc(w, r, dataformat.NewEntityDoc(e))
	})
	mux.HandleFunc("/solution", func(w http.ResponseWriter, r *http.Request) {
		p.mu.RLock()
		sol, err := p.network.Solve()
		p.mu.RUnlock()
		if err != nil {
			proxyhttp.Error(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, sol)
	})
	mux.HandleFunc("/healthz", healthz)
	return mux
}

// Run starts the proxy and registers with the master when given.
func (p *SIMProxy) Run(addr, masterURL string) (string, error) {
	return p.run(addr, masterURL, p.Handler(), registry.Registration{
		ID:        "sim:" + p.network.ID,
		Kind:      registry.KindSIM,
		EntityURI: p.EntityURI(),
	})
}

// Close stops the proxy.
func (p *SIMProxy) Close() { p.close() }

// GISProxy serves a district's geographic database.
type GISProxy struct {
	common
	district string
	store    *gis.Store
}

// NewGISProxy wraps a GIS store.
func NewGISProxy(district string, store *gis.Store) *GISProxy {
	return &GISProxy{district: district, store: store}
}

// EntityURI returns the district URI the GIS serves.
func (p *GISProxy) EntityURI() string { return ontology.DistrictURI(p.district) }

// Store exposes the underlying store (simulation wiring).
func (p *GISProxy) Store() *gis.Store { return p.store }

// Handler returns the proxy's web interface:
//
//	GET /features?minLat=&minLon=&maxLat=&maxLon=   bbox query
//	GET /features?lat=&lon=&radius=                  radius query
//	GET /feature?id=...
//	GET /healthz
func (p *GISProxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/features", p.handleFeatures)
	mux.HandleFunc("/feature", p.handleFeature)
	mux.HandleFunc("/healthz", healthz)
	return mux
}

func (p *GISProxy) handleFeatures(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var feats []gis.Feature
	var err error
	switch {
	case q.Get("radius") != "":
		lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
		lon, err2 := strconv.ParseFloat(q.Get("lon"), 64)
		radius, err3 := strconv.ParseFloat(q.Get("radius"), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			proxyhttp.Error(w, http.StatusBadRequest, errors.New("radius query needs lat, lon, radius"))
			return
		}
		feats, err = p.store.QueryRadius(gis.Point{Lat: lat, Lon: lon}, radius)
	case q.Get("minLat") != "":
		var box gis.BBox
		box.MinLat, _ = strconv.ParseFloat(q.Get("minLat"), 64)
		box.MinLon, _ = strconv.ParseFloat(q.Get("minLon"), 64)
		box.MaxLat, _ = strconv.ParseFloat(q.Get("maxLat"), 64)
		box.MaxLon, _ = strconv.ParseFloat(q.Get("maxLon"), 64)
		feats, err = p.store.QueryBBox(box)
	default:
		proxyhttp.Error(w, http.StatusBadRequest, errors.New("need a bbox or radius query"))
		return
	}
	if err != nil {
		proxyhttp.Error(w, http.StatusBadRequest, err)
		return
	}
	entities := make([]dataformat.Entity, len(feats))
	for i := range feats {
		entities[i] = FeatureEntity(&feats[i])
	}
	proxyhttp.WriteDoc(w, r, dataformat.NewEntitySetDoc(entities))
}

func (p *GISProxy) handleFeature(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		proxyhttp.Error(w, http.StatusBadRequest, errors.New("missing id parameter"))
		return
	}
	f, err := p.store.Get(id)
	if err != nil {
		proxyhttp.Error(w, http.StatusNotFound, err)
		return
	}
	proxyhttp.WriteDoc(w, r, dataformat.NewEntityDoc(FeatureEntity(&f)))
}

// Run starts the proxy and registers with the master when given.
func (p *GISProxy) Run(addr, masterURL string) (string, error) {
	return p.run(addr, masterURL, p.Handler(), registry.Registration{
		ID:        "gis:" + p.district,
		Kind:      registry.KindGIS,
		EntityURI: p.EntityURI(),
	})
}

// Close stops the proxy.
func (p *GISProxy) Close() { p.close() }

func healthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "%s", mustJSON(v))
}
