// Package dbproxy implements the Database-proxies of the paper: web
// services translating heterogeneous district databases (BIM, SIM, GIS)
// into the common open format and registering them on the master node.
// Every proxy serves its routes through the unified service-API layer
// (internal/api): versioned /v1 paths with legacy aliases, uniform
// error envelopes, and the standard middleware chain.
package dbproxy

import (
	"context"
	"errors"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"repro/internal/api"
	"repro/internal/bim"
	"repro/internal/dataformat"
	"repro/internal/gis"
	"repro/internal/ontology"
	"repro/internal/proxyhttp"
	"repro/internal/registry"
	"repro/internal/sim"
)

// common carries the plumbing all Database-proxies share.
type common struct {
	srv  proxyhttp.Server
	apiS *api.Server
	reg  *proxyhttp.Registrar
}

// Metrics exposes the per-route API metrics.
func (c *common) Metrics() *api.Metrics { return c.apiS.Metrics() }

// SetLegacyAliases toggles the unversioned route aliases at runtime
// (the -legacy-aliases escape hatch of cmd/dbproxy).
func (c *common) SetLegacyAliases(enabled bool) { c.apiS.SetLegacyAliases(enabled) }

// run starts the web service and, when masterURL is set, registration.
func (c *common) run(addr, masterURL string, handler http.Handler, r registry.Registration) (string, error) {
	bound, err := c.srv.Serve(addr, handler)
	if err != nil {
		return "", err
	}
	if masterURL != "" {
		r.BaseURL = "http://" + bound + "/"
		c.reg = &proxyhttp.Registrar{MasterURL: masterURL, Registration: r}
		if err := c.reg.Start(); err != nil {
			c.srv.Close()
			return "", err
		}
	}
	return bound, nil
}

// close stops registration and the web service.
func (c *common) close() {
	if c.reg != nil {
		c.reg.Stop()
	}
	c.srv.Close()
}

// BIMProxy serves one building's information model.
type BIMProxy struct {
	common
	district string
	mu       sync.RWMutex
	building *bim.Building
}

// NewBIMProxy wraps a decoded building model.
func NewBIMProxy(district string, b *bim.Building) (*BIMProxy, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	p := &BIMProxy{district: district, building: b}
	p.apiS = p.buildAPI()
	return p, nil
}

// EntityURI returns the building's ontology URI.
func (p *BIMProxy) EntityURI() string {
	return ontology.EntityURI(p.district, ontology.KindBuilding, p.building.ID)
}

// Handler returns the proxy's web interface:
//
//	GET /v1/model     the translated building (entity document, JSON/XML)
//	GET /v1/devices   device URIs placed in the building
//	GET /v1/metrics, /v1/healthz   (legacy unversioned aliases included)
func (p *BIMProxy) buildAPI() *api.Server {
	s := api.NewServer(api.Options{Service: "dbproxy-bim"})
	s.Get("/model", func(ctx context.Context, q url.Values) (any, error) {
		p.mu.RLock()
		e := BuildingEntity(p.building, p.district)
		p.mu.RUnlock()
		return dataformat.NewEntityDoc(e), nil
	})
	s.Get("/devices", func(ctx context.Context, q url.Values) (any, error) {
		p.mu.RLock()
		uris := p.building.DeviceURIs()
		p.mu.RUnlock()
		entities := make([]dataformat.Entity, len(uris))
		for i, uri := range uris {
			entities[i] = dataformat.Entity{URI: uri, Kind: dataformat.EntityDevice}
		}
		return dataformat.NewEntitySetDoc(entities), nil
	})
	return s
}

// Handler returns the proxy's web interface.
func (p *BIMProxy) Handler() http.Handler { return p.apiS.Handler() }

// Run starts the proxy and registers with the master when given.
func (p *BIMProxy) Run(addr, masterURL string) (string, error) {
	return p.run(addr, masterURL, p.Handler(), registry.Registration{
		ID:        "bim:" + p.building.ID,
		Kind:      registry.KindBIM,
		EntityURI: p.EntityURI(),
	})
}

// Close stops the proxy.
func (p *BIMProxy) Close() { p.close() }

// SIMProxy serves one distribution network's model.
type SIMProxy struct {
	common
	district string
	mu       sync.RWMutex
	network  *sim.Network
}

// NewSIMProxy wraps a decoded network model.
func NewSIMProxy(district string, n *sim.Network) (*SIMProxy, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	p := &SIMProxy{district: district, network: n}
	p.apiS = p.buildAPI()
	return p, nil
}

// EntityURI returns the network's ontology URI.
func (p *SIMProxy) EntityURI() string {
	return ontology.EntityURI(p.district, ontology.KindNetwork, p.network.ID)
}

// SetDemand updates a substation demand (used by scenario drivers).
func (p *SIMProxy) SetDemand(nodeID string, kw float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.network.SetDemand(nodeID, kw)
}

// Handler returns the proxy's web interface:
//
//	GET /v1/model      the translated network with solved flows
//	GET /v1/solution   the raw steady-state solution (JSON)
//	GET /v1/metrics, /v1/healthz   (legacy unversioned aliases included)
func (p *SIMProxy) buildAPI() *api.Server {
	s := api.NewServer(api.Options{Service: "dbproxy-sim"})
	s.Get("/model", func(ctx context.Context, q url.Values) (any, error) {
		p.mu.RLock()
		e, err := NetworkEntity(p.network, p.district)
		p.mu.RUnlock()
		if err != nil {
			return nil, api.Internal(err)
		}
		return dataformat.NewEntityDoc(e), nil
	})
	s.Get("/solution", func(ctx context.Context, q url.Values) (any, error) {
		p.mu.RLock()
		sol, err := p.network.Solve()
		p.mu.RUnlock()
		if err != nil {
			return nil, api.Internal(err)
		}
		return sol, nil
	})
	return s
}

// Handler returns the proxy's web interface.
func (p *SIMProxy) Handler() http.Handler { return p.apiS.Handler() }

// Run starts the proxy and registers with the master when given.
func (p *SIMProxy) Run(addr, masterURL string) (string, error) {
	return p.run(addr, masterURL, p.Handler(), registry.Registration{
		ID:        "sim:" + p.network.ID,
		Kind:      registry.KindSIM,
		EntityURI: p.EntityURI(),
	})
}

// Close stops the proxy.
func (p *SIMProxy) Close() { p.close() }

// GISProxy serves a district's geographic database.
type GISProxy struct {
	common
	district string
	store    *gis.Store
}

// NewGISProxy wraps a GIS store.
func NewGISProxy(district string, store *gis.Store) *GISProxy {
	p := &GISProxy{district: district, store: store}
	p.apiS = p.buildAPI()
	return p
}

// EntityURI returns the district URI the GIS serves.
func (p *GISProxy) EntityURI() string { return ontology.DistrictURI(p.district) }

// Store exposes the underlying store (simulation wiring).
func (p *GISProxy) Store() *gis.Store { return p.store }

// Handler returns the proxy's web interface:
//
//	GET /v1/features?minLat=&minLon=&maxLat=&maxLon=   bbox query
//	GET /v1/features?lat=&lon=&radius=                 radius query
//	GET /v1/feature?id=...
//	GET /v1/metrics, /v1/healthz   (legacy unversioned aliases included)
func (p *GISProxy) buildAPI() *api.Server {
	s := api.NewServer(api.Options{Service: "dbproxy-gis"})
	s.Get("/features", p.features)
	s.Get("/feature", p.feature)
	return s
}

// Handler returns the proxy's web interface.
func (p *GISProxy) Handler() http.Handler { return p.apiS.Handler() }

func (p *GISProxy) features(ctx context.Context, q url.Values) (any, error) {
	var feats []gis.Feature
	var err error
	switch {
	case q.Get("radius") != "":
		lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
		lon, err2 := strconv.ParseFloat(q.Get("lon"), 64)
		radius, err3 := strconv.ParseFloat(q.Get("radius"), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, api.BadRequest(errors.New("radius query needs lat, lon, radius"))
		}
		feats, err = p.store.QueryRadius(gis.Point{Lat: lat, Lon: lon}, radius)
	case q.Get("minLat") != "":
		var box gis.BBox
		box.MinLat, _ = strconv.ParseFloat(q.Get("minLat"), 64)
		box.MinLon, _ = strconv.ParseFloat(q.Get("minLon"), 64)
		box.MaxLat, _ = strconv.ParseFloat(q.Get("maxLat"), 64)
		box.MaxLon, _ = strconv.ParseFloat(q.Get("maxLon"), 64)
		feats, err = p.store.QueryBBox(box)
	default:
		return nil, api.BadRequest(errors.New("need a bbox or radius query"))
	}
	if err != nil {
		return nil, api.BadRequest(err)
	}
	entities := make([]dataformat.Entity, len(feats))
	for i := range feats {
		entities[i] = FeatureEntity(&feats[i])
	}
	return dataformat.NewEntitySetDoc(entities), nil
}

func (p *GISProxy) feature(ctx context.Context, q url.Values) (any, error) {
	id := q.Get("id")
	if id == "" {
		return nil, api.BadRequest(errors.New("missing id parameter"))
	}
	f, err := p.store.Get(id)
	if err != nil {
		return nil, api.NotFound(err)
	}
	return dataformat.NewEntityDoc(FeatureEntity(&f)), nil
}

// Run starts the proxy and registers with the master when given.
func (p *GISProxy) Run(addr, masterURL string) (string, error) {
	return p.run(addr, masterURL, p.Handler(), registry.Registration{
		ID:        "gis:" + p.district,
		Kind:      registry.KindGIS,
		EntityURI: p.EntityURI(),
	})
}

// Close stops the proxy.
func (p *GISProxy) Close() { p.close() }
