package dbproxy

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/bim"
	"repro/internal/dataformat"
	"repro/internal/gis"
	"repro/internal/proxyhttp"
	"repro/internal/sim"
)

func TestBuildingEntityTranslation(t *testing.T) {
	b := bim.Synthesize(bim.SynthOptions{Seed: 3, Storeys: 2, SpacesPerStorey: 2, DevicesPerSpace: 1})
	e := BuildingEntity(b, "turin")
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Kind != dataformat.EntityBuilding || e.URI != "urn:district:turin/building:"+b.ID {
		t.Errorf("root = %+v", e)
	}
	if got, _ := e.Prop("envelopeUA.WperK"); got == "" {
		t.Error("missing envelope UA property")
	}
	ua, err := strconv.ParseFloat(mustProp(t, &e, "envelopeUA.WperK"), 64)
	if err != nil || ua <= 0 {
		t.Errorf("UA = %v, %v", ua, err)
	}
	if len(e.Children) != 2 {
		t.Fatalf("storeys = %d", len(e.Children))
	}
	space := e.Children[0].Children[0]
	if _, ok := space.Prop("usage"); !ok {
		t.Error("space usage lost")
	}
	if len(space.Children) != 1 || space.Children[0].Kind != dataformat.EntityDevice {
		t.Errorf("device leaves = %+v", space.Children)
	}
}

func mustProp(t *testing.T, e *dataformat.Entity, name string) string {
	t.Helper()
	v, ok := e.Prop(name)
	if !ok {
		t.Fatalf("property %q missing", name)
	}
	return v
}

func TestNetworkEntityTranslation(t *testing.T) {
	n := sim.Synthesize(sim.SynthOptions{Seed: 4, Substations: 6})
	e, err := NetworkEntity(n, "turin")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Kind != dataformat.EntityNetwork {
		t.Errorf("kind = %v", e.Kind)
	}
	eff, err := strconv.ParseFloat(mustProp(t, &e, "efficiency"), 64)
	if err != nil || eff <= 0 || eff > 1 {
		t.Errorf("efficiency = %v", eff)
	}
	var nodes, edges int
	for _, c := range e.Children {
		switch c.Kind {
		case dataformat.EntityNode:
			nodes++
		case dataformat.EntityEdge:
			edges++
			if _, ok := c.Prop("flow.kW"); !ok {
				t.Errorf("edge %s missing solved flow", c.URI)
			}
		}
	}
	if nodes != len(n.Nodes) || edges != len(n.Edges) {
		t.Errorf("children: %d nodes %d edges, want %d/%d", nodes, edges, len(n.Nodes), len(n.Edges))
	}
}

func TestNetworkEntityInvalid(t *testing.T) {
	n := &sim.Network{ID: "broken"}
	if _, err := NetworkEntity(n, "turin"); err == nil {
		t.Fatal("invalid network translated")
	}
}

func TestFeatureEntityTranslation(t *testing.T) {
	f := gis.Feature{
		ID: "urn:district:turin/building:b01", Kind: gis.FeatureBuilding, Name: "DAUIN",
		Footprint:  []gis.Point{{Lat: 45, Lon: 7}, {Lat: 45.001, Lon: 7.001}},
		Attributes: map[string]string{"cadastral": "F12/345"},
	}
	e := FeatureEntity(&f)
	if e.Kind != dataformat.EntityBuilding || e.Location == nil {
		t.Errorf("entity = %+v", e)
	}
	if v, _ := e.Prop("attr.cadastral"); v != "F12/345" {
		t.Errorf("attribute lost: %q", v)
	}
	if v, _ := e.Prop("vertices"); v != "2" {
		t.Errorf("vertices = %q", v)
	}
}

func TestBIMProxyEndpoints(t *testing.T) {
	b := bim.Synthesize(bim.SynthOptions{Seed: 5, Storeys: 1, SpacesPerStorey: 2, DevicesPerSpace: 2})
	p, err := NewBIMProxy("turin", b)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	doc, err := proxyhttp.GetDoc(nil, ts.URL+"/model", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Entity == nil || doc.Entity.Kind != dataformat.EntityBuilding {
		t.Fatalf("model = %+v", doc)
	}
	// XML too — the open-format requirement.
	doc, err = proxyhttp.GetDoc(nil, ts.URL+"/model", dataformat.XML)
	if err != nil || doc.Entity == nil {
		t.Fatalf("xml model: %v", err)
	}

	doc, err = proxyhttp.GetDoc(nil, ts.URL+"/devices", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entities) != 4 {
		t.Errorf("devices = %d, want 4", len(doc.Entities))
	}
}

func TestBIMProxyRejectsInvalidModel(t *testing.T) {
	if _, err := NewBIMProxy("turin", &bim.Building{}); err == nil {
		t.Fatal("invalid building accepted")
	}
}

func TestSIMProxyEndpoints(t *testing.T) {
	n := sim.Synthesize(sim.SynthOptions{Seed: 6, Substations: 4})
	p, err := NewSIMProxy("turin", n)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	doc, err := proxyhttp.GetDoc(nil, ts.URL+"/model", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Entity == nil || doc.Entity.Kind != dataformat.EntityNetwork {
		t.Fatalf("model = %+v", doc)
	}

	rsp, err := http.Get(ts.URL + "/solution")
	if err != nil {
		t.Fatal(err)
	}
	var sol sim.Solution
	_ = json.NewDecoder(rsp.Body).Decode(&sol)
	rsp.Body.Close()
	if sol.PlantOutputKW <= 0 || len(sol.Flows) != len(n.Edges) {
		t.Errorf("solution = %+v", sol)
	}

	// Demand change shows up in the next solution.
	var sub string
	for _, node := range n.Nodes {
		if node.Kind == sim.NodeSubstation {
			sub = node.ID
			break
		}
	}
	before := sol.PlantOutputKW
	if !p.SetDemand(sub, 10000) {
		t.Fatal("SetDemand failed")
	}
	rsp, _ = http.Get(ts.URL + "/solution")
	_ = json.NewDecoder(rsp.Body).Decode(&sol)
	rsp.Body.Close()
	if sol.PlantOutputKW <= before {
		t.Errorf("plant output did not rise: %v -> %v", before, sol.PlantOutputKW)
	}
}

func TestGISProxyEndpoints(t *testing.T) {
	store := gis.NewStore(0)
	_ = store.Add(gis.Feature{ID: "urn:district:turin/building:b01", Kind: gis.FeatureBuilding,
		Name: "DAUIN", Footprint: []gis.Point{{Lat: 45.0628, Lon: 7.6624}}})
	_ = store.Add(gis.Feature{ID: "urn:district:turin/building:b02", Kind: gis.FeatureBuilding,
		Name: "Library", Footprint: []gis.Point{{Lat: 45.09, Lon: 7.70}}})
	p := NewGISProxy("turin", store)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	doc, err := proxyhttp.GetDoc(nil, ts.URL+"/features?minLat=45.05&minLon=7.65&maxLat=45.07&maxLon=7.67", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entities) != 1 || doc.Entities[0].Name != "DAUIN" {
		t.Fatalf("bbox query = %+v", doc.Entities)
	}

	doc, err = proxyhttp.GetDoc(nil, ts.URL+"/features?lat=45.0628&lon=7.6624&radius=500", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entities) != 1 {
		t.Errorf("radius query = %d", len(doc.Entities))
	}

	doc, err = proxyhttp.GetDoc(nil, ts.URL+"/feature?id=urn:district:turin/building:b02", dataformat.JSON)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Entity == nil || doc.Entity.Name != "Library" {
		t.Errorf("feature = %+v", doc.Entity)
	}

	for _, bad := range []string{"/features", "/feature", "/feature?id=ghost", "/features?radius=x&lat=1&lon=1"} {
		rsp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode == http.StatusOK {
			t.Errorf("%s unexpectedly OK", bad)
		}
	}
}

func TestProxyRunWithoutMaster(t *testing.T) {
	b := bim.Synthesize(bim.SynthOptions{Seed: 7, Storeys: 1, SpacesPerStorey: 1})
	p, err := NewBIMProxy("turin", b)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Run("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	p.Close()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("proxy alive after Close")
	}
}
