// Package obs is the zero-dependency observability layer shared by
// every service: a typed instrument registry (counters, gauges,
// fixed-bucket histograms) with a Prometheus text exposition and a JSON
// snapshot, plus cross-service trace plumbing (trace.go).
//
// Instruments are lock-cheap — counters and histogram buckets are
// plain atomics, gauges may be callback-backed so internals (queue
// depths, WAL watermarks, snapshot age) are read at scrape time instead
// of being pushed on the hot path — and cardinality is bounded by
// construction: every instrument is registered once with a fixed label
// set, so a registry can never grow per-request series.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one instrument's fixed label set. Keys must be literal
// (static) names — the districtlint obsnames rule enforces that at the
// call site; values may be dynamic but are fixed at registration
// (e.g. a shard index), which is what bounds cardinality.
type Labels map[string]string

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// kind discriminates instrument flavours inside a registry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one registered metric: a name, a fixed label set, and
// exactly one of the value holders.
type instrument struct {
	name   string
	help   string
	kind   kind
	labels Labels
	lstr   string // pre-rendered sorted label body, e.g. `shard="3"`

	c  *Counter
	g  *Gauge
	fn func() float64 // callback-backed counter/gauge
	h  *Histogram
}

// value reads the instrument's scalar (counters and gauges).
func (in *instrument) value() float64 {
	switch {
	case in.fn != nil:
		return in.fn()
	case in.c != nil:
		return float64(in.c.Value())
	default:
		return in.g.Value()
	}
}

// Registry holds named instruments. Registration is idempotent per
// (name, labels): asking again returns the same instrument, and asking
// with a conflicting kind panics — both are programmer errors a test
// hits immediately, not operational conditions.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*instrument
	list []*instrument
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*instrument)}
}

// validName pins the naming convention: snake_case under the repro_
// namespace. Unit-suffix conventions (_total, _seconds, _bytes) are
// enforced statically by districtlint's obsnames rule.
func validName(name string) bool {
	if !strings.HasPrefix(name, "repro_") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') {
			continue
		}
		return false
	}
	return true
}

// register finds or creates the instrument for (name, labels).
func (r *Registry) register(name, help string, k kind, labels Labels) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want repro_[a-z0-9_]+)", name))
	}
	lstr := renderLabels(labels, nil)
	id := name + "{" + lstr + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if in := r.byID[id]; in != nil {
		if in.kind != k {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", id, k, in.kind))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: k, labels: labels, lstr: lstr}
	r.byID[id] = in
	r.list = append(r.list, in)
	return in
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	in := r.register(name, help, kindCounter, labels)
	if in.c == nil && in.fn == nil {
		in.c = &Counter{}
	}
	return in.c
}

// CounterFunc registers a callback-backed counter: fn is read at
// scrape time, so an existing atomic (HubStats fields, dropped-row
// counts) is exported without double accounting.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	in := r.register(name, help, kindCounter, labels)
	in.fn = fn
}

// Gauge registers (or finds) a settable gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	in := r.register(name, help, kindGauge, labels)
	if in.g == nil && in.fn == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// GaugeFunc registers a callback-backed gauge, evaluated at scrape
// time — the idiom for live internals like queue depths and snapshot
// age.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	in := r.register(name, help, kindGauge, labels)
	in.fn = fn
}

// Histogram registers (or finds) a histogram with the given bucket
// upper bounds (ascending; a final +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	in := r.register(name, help, kindHistogram, labels)
	if in.h == nil {
		in.h = newHistogram(bounds)
	}
	return in.h
}

// Snapshot is one instrument's point-in-time reading, JSON-shaped for
// the /v1/metrics document and districtctl top.
type Snapshot struct {
	Name      string             `json:"name"`
	Type      string             `json:"type"`
	Labels    Labels             `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot reads every instrument, sorted by name then label string.
func (r *Registry) Snapshot() []Snapshot {
	ins := r.sorted()
	out := make([]Snapshot, 0, len(ins))
	for _, in := range ins {
		s := Snapshot{Name: in.name, Type: in.kind.String(), Labels: in.labels}
		if in.kind == kindHistogram {
			hs := in.h.Snapshot()
			s.Histogram = &hs
			s.Value = float64(hs.Count)
		} else {
			s.Value = in.value()
		}
		out = append(out, s)
	}
	return out
}

// sorted copies the instrument list in stable exposition order.
func (r *Registry) sorted() []*instrument {
	r.mu.Lock()
	ins := make([]*instrument, len(r.list))
	copy(ins, r.list)
	r.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].name != ins[j].name {
			return ins[i].name < ins[j].name
		}
		return ins[i].lstr < ins[j].lstr
	})
	return ins
}

// WritePrometheus renders the registry in text exposition format 0.0.4.
// extra labels (typically {service="..."}) are merged into every
// series.
func (r *Registry) WritePrometheus(w io.Writer, extra Labels) {
	ins := r.sorted()
	lastName := ""
	for _, in := range ins {
		if in.name != lastName {
			fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", in.name, in.kind)
			lastName = in.name
		}
		body := renderLabels(in.labels, extra)
		if in.kind != kindHistogram {
			fmt.Fprintf(w, "%s%s %s\n", in.name, braced(body), formatFloat(in.value()))
			continue
		}
		hs := in.h.Snapshot()
		cum := uint64(0)
		for i, b := range hs.Bounds {
			cum += hs.Counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", in.name, braced(join(body, `le="`+formatFloat(b)+`"`)), cum)
		}
		cum += hs.Counts[len(hs.Bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", in.name, braced(join(body, `le="+Inf"`)), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", in.name, braced(body), formatFloat(hs.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", in.name, braced(body), cum)
	}
}

// renderLabels merges and renders label pairs as `k="v",k2="v2"` with
// keys sorted; extra wins on key collision.
func renderLabels(labels, extra Labels) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	merged := make(map[string]string, len(labels)+len(extra))
	for k, v := range labels {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(merged[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// braced wraps a non-empty label body in curly braces.
func braced(body string) string {
	if body == "" {
		return ""
	}
	return "{" + body + "}"
}

// join appends one rendered pair to a label body.
func join(body, pair string) string {
	if body == "" {
		return pair
	}
	return body + "," + pair
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
