package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("repro_test_events_total", "events", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("repro_test_events_total", "events", nil); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("repro_test_depth", "depth", Labels{"shard": "3"})
	g.Set(7.5)
	if g.Value() != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", g.Value())
	}
	r.GaugeFunc("repro_test_live", "live", nil, func() float64 { return 42 })
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d instruments, want 3", len(snap))
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"http_requests_total", "repro_Bad", "repro_a-b", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q was accepted", name)
				}
			}()
			r.Counter(name, "", nil)
		}()
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("repro_test_latency_seconds", "lat", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{1, 2, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-5.605) > 1e-9 {
		t.Fatalf("sum = %v, want 5.605", s.Sum)
	}
	if q := s.Quantile(0.5); q <= 0.01 || q > 0.1 {
		t.Fatalf("p50 = %v, want in (0.01, 0.1]", q)
	}
	if q := s.Quantile(1); q != 1 {
		t.Fatalf("p100 = %v, want clamp to last bound 1", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(ExpBuckets(0.001, 2, 10))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	if math.Abs(s.Sum-80) > 1e-6 {
		t.Fatalf("sum = %v, want 80", s.Sum)
	}
}

// TestPrometheusRoundTrip is the exposition round-trip: what the
// registry writes must parse back to the same families and values.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_test_events_total", "events seen", Labels{"kind": "a"}).Add(3)
	r.Counter("repro_test_events_total", "events seen", Labels{"kind": `quo"te`}).Add(1)
	r.Gauge("repro_test_depth", "queue depth", Labels{"shard": "0"}).Set(12)
	h := r.Histogram("repro_test_latency_seconds", "latency", []float64{0.01, 0.1}, nil)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	r.WritePrometheus(&b, Labels{"service": "test"})
	fams, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, b.String())
	}
	ev := fams["repro_test_events_total"]
	if ev == nil || ev.Type != "counter" || len(ev.Samples) != 2 {
		t.Fatalf("events family = %+v", ev)
	}
	for _, s := range ev.Samples {
		if s.Labels["service"] != "test" {
			t.Fatalf("sample missing service label: %v", s.Labels)
		}
		if s.Labels["kind"] == `quo"te` && s.Value != 1 {
			t.Fatalf("escaped-label sample = %v, want 1", s.Value)
		}
	}
	if g := fams["repro_test_depth"]; g == nil || g.Type != "gauge" || g.Samples[0].Value != 12 {
		t.Fatalf("depth family = %+v", g)
	}
	hist := fams["repro_test_latency_seconds"]
	if hist == nil {
		t.Fatal("latency family missing")
	}
	if err := hist.ValidateHistogram(); err != nil {
		t.Fatalf("histogram invalid: %v", err)
	}
	if len(hist.Buckets) != 3 { // 0.01, 0.1, +Inf
		t.Fatalf("bucket series = %d, want 3", len(hist.Buckets))
	}
	if hist.Counts[0].Value != 3 {
		t.Fatalf("_count = %v, want 3", hist.Counts[0].Value)
	}
	if math.Abs(hist.Sums[0].Value-2.055) > 1e-9 {
		t.Fatalf("_sum = %v, want 2.055", hist.Sums[0].Value)
	}
}

func TestTraceparent(t *testing.T) {
	id, span := NewTraceID(), NewSpanID()
	if len(id) != 32 || len(span) != 16 {
		t.Fatalf("id lengths: %q %q", id, span)
	}
	tid, sid, ok := ParseTraceparent(FormatTraceparent(id, span))
	if !ok || tid != id || sid != span {
		t.Fatalf("round-trip failed: %v %q %q", ok, tid, sid)
	}
	for _, bad := range []string{
		"", "00-zz-aa-01", "00-" + strings.Repeat("0", 32) + "-" + span + "-01",
		"ff-" + id + "-" + span + "-01", "00-" + id + "-" + span, "00-" + id[:31] + "-" + span + "-01",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted malformed traceparent %q", bad)
		}
	}
}

func TestStagesAccumulateAndCtx(t *testing.T) {
	var st *Stages
	st.Observe("noop", time.Second) // nil-safe
	if st.Snapshot() != nil {
		t.Fatal("nil Stages snapshot not nil")
	}
	st = &Stages{}
	st.Observe("wal-append", 2*time.Millisecond)
	st.Observe("store-apply", time.Millisecond)
	st.Observe("wal-append", 3*time.Millisecond)
	snap := st.Snapshot()
	if len(snap) != 2 || snap[0].Name != "wal-append" || snap[0].DurationMS != 5 {
		t.Fatalf("stages = %+v", snap)
	}
	ctx := WithStages(WithTraceID(context.Background(), "abc"), st)
	if TraceIDFrom(ctx) != "abc" || StagesFrom(ctx) != st {
		t.Fatal("context round-trip failed")
	}
	if TraceIDFrom(context.Background()) != "" || StagesFrom(context.Background()) != nil {
		t.Fatal("empty context not empty")
	}
}

func TestTracerRingAndSlowLog(t *testing.T) {
	tr := NewTracer(4)
	var logged []string
	tr.SetSlowLog(10*time.Millisecond, func(format string, args ...any) {
		logged = append(logged, format)
	})
	for i := 0; i < 6; i++ {
		id := "trace-a"
		if i >= 3 {
			id = "trace-b"
		}
		tr.Record(SpanRecord{TraceID: id, Route: "/x", DurationMS: float64(i * 4)})
	}
	// Ring holds the last 4: trace-a (i=2), trace-b (i=3..5).
	if got := tr.Get("trace-a"); len(got) != 1 || got[0].DurationMS != 8 {
		t.Fatalf("trace-a spans = %+v", got)
	}
	if got := tr.Get("trace-b"); len(got) != 3 || got[0].DurationMS != 12 {
		t.Fatalf("trace-b spans = %+v", got)
	}
	if len(logged) != 3 { // durations 12, 16, 20 ms >= 10ms
		t.Fatalf("slow log fired %d times, want 3", len(logged))
	}
}
