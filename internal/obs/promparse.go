package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// A minimal parser for the Prometheus text exposition format 0.0.4 —
// enough to round-trip what the registry writes and to validate the
// /v1/metrics output in tests (and it keeps the format honest: every
// sample must belong to a typed family, histograms must be cumulative
// and closed by a +Inf bucket).

// PromSample is one parsed series sample.
type PromSample struct {
	Labels Labels
	Value  float64
}

// PromFamily is one metric family: its TYPE, HELP, and samples. For
// histograms the _bucket/_sum/_count series are folded under the base
// family name.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Buckets []PromSample // histogram _bucket series (le in Labels)
	Sums    []PromSample // histogram _sum series
	Counts  []PromSample // histogram _count series
	Samples []PromSample // counter/gauge series
}

// ParseProm parses a text exposition into families keyed by name.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			f := fams[name]
			if f == nil {
				f = &PromFamily{Name: name}
				fams[name] = f
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				f.Type = fields[3]
			} else if len(fields) == 4 {
				f.Help = fields[3]
			}
			continue
		}
		name, labels, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base, series := name, ""
		for _, sfx := range [...]string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name && fams[trimmed] != nil && fams[trimmed].Type == "histogram" {
				base, series = trimmed, sfx
				break
			}
		}
		f := fams[base]
		if f == nil || f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		s := PromSample{Labels: labels, Value: val}
		switch series {
		case "_bucket":
			f.Buckets = append(f.Buckets, s)
		case "_sum":
			f.Sums = append(f.Sums, s)
		case "_count":
			f.Counts = append(f.Counts, s)
		default:
			f.Samples = append(f.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// parseSample splits `name{k="v",...} value` into its parts.
func parseSample(line string) (string, Labels, float64, error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	labels := Labels{}
	if brace >= 0 {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			key := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			i := 0
			for ; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' && i+1 < len(rest) {
					i++
					switch rest[i] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[i])
					}
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			if i == len(rest) {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels[key] = val.String()
			rest = rest[i+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return "", nil, 0, fmt.Errorf("malformed label separator in %q", line)
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("no value in %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	valStr := strings.TrimSpace(rest)
	var v float64
	switch valStr {
	case "+Inf", "Inf":
		v = inf()
	case "-Inf":
		v = -inf()
	default:
		var err error
		if v, err = strconv.ParseFloat(valStr, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad value %q: %w", valStr, err)
		}
	}
	return name, labels, v, nil
}

func inf() float64 { return math.Inf(1) }

// ValidateHistogram checks one histogram family's invariants: for every
// label set, le bounds strictly ascend, cumulative counts never
// decrease, the series closes with le="+Inf", and the _count series
// equals the +Inf bucket. Returns nil for a well-formed family.
func (f *PromFamily) ValidateHistogram() error {
	if f.Type != "histogram" {
		return fmt.Errorf("%s: TYPE is %q, want histogram", f.Name, f.Type)
	}
	type seriesState struct {
		lastLe  float64
		lastCum float64
		closed  bool
	}
	series := make(map[string]*seriesState)
	keyOf := func(l Labels) string {
		pruned := make(Labels, len(l))
		for k, v := range l {
			if k != "le" {
				pruned[k] = v
			}
		}
		return renderLabels(pruned, nil)
	}
	for _, b := range f.Buckets {
		key := keyOf(b.Labels)
		st := series[key]
		if st == nil {
			st = &seriesState{lastLe: -inf()}
			series[key] = st
		}
		if st.closed {
			return fmt.Errorf("%s{%s}: bucket after le=\"+Inf\"", f.Name, key)
		}
		leStr, ok := b.Labels["le"]
		if !ok {
			return fmt.Errorf("%s{%s}: bucket without le", f.Name, key)
		}
		var le float64
		if leStr == "+Inf" {
			le = inf()
			st.closed = true
		} else {
			var err error
			if le, err = strconv.ParseFloat(leStr, 64); err != nil {
				return fmt.Errorf("%s{%s}: bad le %q", f.Name, key, leStr)
			}
		}
		if le <= st.lastLe {
			return fmt.Errorf("%s{%s}: le %q not ascending", f.Name, key, leStr)
		}
		if b.Value < st.lastCum {
			return fmt.Errorf("%s{%s}: cumulative count decreased at le=%q", f.Name, key, leStr)
		}
		st.lastLe, st.lastCum = le, b.Value
	}
	for key, st := range series {
		if !st.closed {
			return fmt.Errorf("%s{%s}: missing le=\"+Inf\" bucket", f.Name, key)
		}
	}
	for _, c := range f.Counts {
		key := keyOf(c.Labels)
		st := series[key]
		if st == nil {
			return fmt.Errorf("%s{%s}: _count without buckets", f.Name, key)
		}
		if c.Value != st.lastCum {
			return fmt.Errorf("%s{%s}: _count %v != +Inf bucket %v", f.Name, key, c.Value, st.lastCum)
		}
	}
	if len(f.Sums) != len(series) || len(f.Counts) != len(series) {
		return fmt.Errorf("%s: %d series but %d _sum / %d _count samples",
			f.Name, len(series), len(f.Sums), len(f.Counts))
	}
	return nil
}
