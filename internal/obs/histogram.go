package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution: atomic per-bucket counters
// under ascending upper bounds plus an implicit +Inf overflow bucket.
// Observe is wait-free apart from the CAS loop maintaining the sum, so
// a histogram can sit on a hot path (or under a fan-out mutex, where
// the lockio rule bans anything blocking).
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, len(bounds) → +Inf
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time reading: per-bucket counts
// (NOT cumulative; the last entry is the +Inf overflow bucket), the
// value sum, and the total observation count.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot reads the histogram. Count is derived from the bucket
// counts, so _count always equals the +Inf cumulative bucket even
// under concurrent observes.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (0..1) from the bucket counts with
// linear interpolation inside the holding bucket; values beyond the
// last finite bound clamp to it. Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < target || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*((target-prev)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets builds n exponentially spaced upper bounds starting at
// start and multiplying by factor — the standard shape for latency and
// size distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Shared bucket shapes, so the same family keeps the same bounds
// wherever it is registered.
var (
	// LatencyBuckets covers 0.5ms .. ~4s (route handlers, WAL appends).
	LatencyBuckets = ExpBuckets(0.0005, 2, 14)
	// FastLatencyBuckets covers 50µs .. ~0.8s (fsync, dedup claims).
	FastLatencyBuckets = ExpBuckets(0.00005, 2, 14)
	// CountBuckets covers 1 .. 2048 (commit-group rows, query fan-out).
	CountBuckets = ExpBuckets(1, 2, 12)
)
