package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// Cross-service tracing, W3C traceparent flavoured: the middleware
// chain parses (or mints) a trace ID per request, api.Transport
// forwards it on outbound calls, handlers accumulate named stage
// timings through the context, and each service keeps its finished
// span records in a bounded ring served at /v1/trace/{id}.

// TraceHeader is the propagation header, in canonical form.
const TraceHeader = "Traceparent"

// randHex returns n random bytes as lowercase hex.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing means the platform is broken; a
		// time-derived ID would silently collide, so fail loudly.
		panic("obs: crypto/rand: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a 16-byte (32 hex char) trace ID.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints an 8-byte (16 hex char) span ID.
func NewSpanID() string { return randHex(8) }

// FormatTraceparent renders a version-00 traceparent value with the
// sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent extracts the trace and parent-span IDs from a
// traceparent header value. Unknown versions are accepted (per the
// spec) as long as the version-00 prefix fields parse; all-zero IDs
// and malformed values are rejected.
func ParseTraceparent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 {
		return "", "", false
	}
	ver, tid, sid := parts[0], parts[1], parts[2]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return "", "", false
	}
	if len(tid) != 32 || !isLowerHex(tid) || tid == strings.Repeat("0", 32) {
		return "", "", false
	}
	if len(sid) != 16 || !isLowerHex(sid) || sid == strings.Repeat("0", 16) {
		return "", "", false
	}
	return tid, sid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') {
			continue
		}
		return false
	}
	return true
}

type ctxKey int

const (
	ctxKeyTraceID ctxKey = iota
	ctxKeyStages
)

// WithTraceID stores the request's trace ID in the context.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyTraceID, id)
}

// TraceIDFrom reads the trace ID, "" when the request is untraced.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyTraceID).(string)
	return id
}

// WithStages stores a stage collector in the context.
func WithStages(ctx context.Context, st *Stages) context.Context {
	return context.WithValue(ctx, ctxKeyStages, st)
}

// StagesFrom reads the request's stage collector; nil when absent.
// Stages methods are nil-safe, so instrumentation points call
// StagesFrom(ctx).Observe(...) unconditionally.
func StagesFrom(ctx context.Context) *Stages {
	st, _ := ctx.Value(ctxKeyStages).(*Stages)
	return st
}

// Stage is one named slice of a request's time.
type Stage struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"durationMs"`
}

// Stages accumulates named stage durations for one request. Repeat
// observations of the same name sum (a chunked ingest crosses the WAL
// several times; the stage is the total time the request spent there).
// Safe for concurrent use: shard workers on different goroutines
// report into the same request's collector.
type Stages struct {
	mu     sync.Mutex
	names  []string
	totals []time.Duration
}

// Observe adds d under name. Nil-safe.
func (s *Stages) Observe(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range s.names {
		if n == name {
			s.totals[i] += d
			return
		}
	}
	s.names = append(s.names, name)
	s.totals = append(s.totals, d)
}

// Snapshot renders the stages in first-observed order. Nil-safe.
func (s *Stages) Snapshot() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stage, len(s.names))
	for i := range s.names {
		out[i] = Stage{Name: s.names[i], DurationMS: float64(s.totals[i]) / float64(time.Millisecond)}
	}
	return out
}

// SpanRecord is one service's finished view of one request.
type SpanRecord struct {
	TraceID    string    `json:"traceId"`
	RequestID  string    `json:"requestId,omitempty"`
	Service    string    `json:"service,omitempty"`
	Method     string    `json:"method"`
	Route      string    `json:"route"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"durationMs"`
	Stages     []Stage   `json:"stages,omitempty"`
}

// defaultTracerCap bounds the span ring when the caller passes 0.
const defaultTracerCap = 512

// Tracer keeps the most recent span records in a fixed ring and,
// optionally, logs requests slower than a threshold.
type Tracer struct {
	mu   sync.Mutex
	ring []SpanRecord
	next int
	n    int

	slow time.Duration
	logf func(format string, args ...any)
}

// NewTracer creates a tracer retaining up to capacity spans
// (defaultTracerCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTracerCap
	}
	return &Tracer{ring: make([]SpanRecord, capacity)}
}

// SetSlowLog arms the slow-request log: spans at or above threshold
// are reported through logf. A zero threshold disables it.
func (t *Tracer) SetSlowLog(threshold time.Duration, logf func(format string, args ...any)) {
	t.mu.Lock()
	t.slow = threshold
	t.logf = logf
	t.mu.Unlock()
}

// Record stores one finished span, evicting the oldest when full.
func (t *Tracer) Record(rec SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	slow, logf := t.slow, t.logf
	t.mu.Unlock()
	if logf != nil && slow > 0 && rec.DurationMS >= float64(slow)/float64(time.Millisecond) {
		logf("slow request trace=%s %s %s status=%d %.1fms stages=%v",
			rec.TraceID, rec.Method, rec.Route, rec.Status, rec.DurationMS, rec.Stages)
	}
}

// Get returns the retained spans of one trace, oldest first.
func (t *Tracer) Get(traceID string) []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	for i := 0; i < t.n; i++ {
		idx := (t.next - t.n + i + len(t.ring)) % len(t.ring)
		if t.ring[idx].TraceID == traceID {
			out = append(out, t.ring[idx])
		}
	}
	return out
}
