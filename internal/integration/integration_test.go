package integration

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataformat"
)

var t0 = time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC)

func entity(uri, name string, props map[string]string) dataformat.Entity {
	e := dataformat.Entity{URI: uri, Kind: dataformat.EntityBuilding, Name: name}
	for k, v := range props {
		e.SetProp(k, v, "string")
	}
	return e
}

func TestMergeDistinctEntities(t *testing.T) {
	g := NewMerger("turin")
	g.AddEntity("bim1", entity("urn:b1", "B1", map[string]string{"area": "100"}))
	g.AddEntity("bim2", entity("urn:b2", "B2", nil))
	out := g.Result()
	if len(out.Entities) != 2 || out.Entities[0].URI != "urn:b1" {
		t.Fatalf("entities = %+v", out.Entities)
	}
	if len(out.Conflicts) != 0 {
		t.Errorf("conflicts = %+v", out.Conflicts)
	}
	if len(out.Sources) != 2 || out.Sources[0] != "bim1" {
		t.Errorf("sources = %v", out.Sources)
	}
}

func TestMergeSameEntityComplementary(t *testing.T) {
	g := NewMerger("turin")
	g.AddEntity("bim", entity("urn:b1", "B1", map[string]string{"area": "100"}))
	g.AddEntity("gis", entity("urn:b1", "", map[string]string{"bounds": "45,7,46,8"}))
	out := g.Result()
	if len(out.Entities) != 1 {
		t.Fatalf("entities = %d", len(out.Entities))
	}
	e := out.Entities[0]
	if v, _ := e.Prop("area"); v != "100" {
		t.Error("bim property lost")
	}
	if v, _ := e.Prop("bounds"); v != "45,7,46,8" {
		t.Error("gis property lost")
	}
	if len(out.Conflicts) != 0 {
		t.Errorf("conflicts = %+v", out.Conflicts)
	}
}

func TestMergeConflictRecorded(t *testing.T) {
	g := NewMerger("turin")
	g.AddEntity("bim", entity("urn:b1", "DAUIN", map[string]string{"yearBuilt": "1960"}))
	g.AddEntity("gis", entity("urn:b1", "Politecnico DAUIN", map[string]string{"yearBuilt": "1958"}))
	out := g.Result()
	if len(out.Conflicts) != 2 {
		t.Fatalf("conflicts = %+v", out.Conflicts)
	}
	// First source wins.
	e := out.Entities[0]
	if v, _ := e.Prop("yearBuilt"); v != "1960" {
		t.Errorf("kept = %q, want first source's value", v)
	}
	byProp := map[string]Conflict{}
	for _, c := range out.Conflicts {
		byProp[c.Property] = c
	}
	c := byProp["yearBuilt"]
	if c.Kept != "1960" || c.Dropped != "1958" || c.KeptFrom != "bim" || c.DropFrom != "gis" {
		t.Errorf("conflict = %+v", c)
	}
	if byProp["name"].Dropped != "Politecnico DAUIN" {
		t.Errorf("name conflict = %+v", byProp["name"])
	}
}

func TestMergeChildrenFlattenedWithParentLink(t *testing.T) {
	g := NewMerger("turin")
	parent := entity("urn:b1", "B1", nil)
	parent.Children = []dataformat.Entity{
		entity("urn:b1/space:s1", "Room", map[string]string{"usage": "office"}),
	}
	g.AddEntity("bim", parent)
	out := g.Result()
	if len(out.Entities) != 2 {
		t.Fatalf("entities = %d", len(out.Entities))
	}
	child, ok := out.Entity("urn:b1/space:s1")
	if !ok {
		t.Fatal("child lost")
	}
	if v, _ := child.Prop("parent"); v != "urn:b1" {
		t.Errorf("parent link = %q", v)
	}
}

func TestMeasurementNormalizationAndDedup(t *testing.T) {
	g := NewMerger("turin")
	ms := []dataformat.Measurement{
		{Device: "urn:d1", Quantity: dataformat.Temperature, Unit: dataformat.Fahrenheit, Value: 212, Timestamp: t0},
		{Device: "urn:d1", Quantity: dataformat.Temperature, Unit: dataformat.Celsius, Value: 100, Timestamp: t0}, // same sample, other path
		{Device: "urn:d1", Quantity: dataformat.PowerActive, Unit: dataformat.Kilowatt, Value: 1.5, Timestamp: t0},
	}
	g.AddMeasurements("devproxy", ms[:1])
	g.AddMeasurements("measuredb", ms[1:])
	out := g.Result()
	if len(out.Measurements) != 2 {
		t.Fatalf("measurements = %+v", out.Measurements)
	}
	for _, m := range out.Measurements {
		switch m.Quantity {
		case dataformat.Temperature:
			if m.Unit != dataformat.Celsius || m.Value != 100 {
				t.Errorf("temperature = %+v", m)
			}
		case dataformat.PowerActive:
			if m.Unit != dataformat.Watt || m.Value != 1500 {
				t.Errorf("power = %+v", m)
			}
		}
	}
}

func TestMeasurementNormalizationErrors(t *testing.T) {
	g := NewMerger("turin")
	g.AddMeasurements("x", []dataformat.Measurement{
		{Device: "urn:d1", Quantity: dataformat.Temperature, Unit: "furlong", Value: 1, Timestamp: t0},
	})
	if g.NormalizationErrors() != 1 {
		t.Errorf("NormalizationErrors = %d", g.NormalizationErrors())
	}
	if len(g.Result().Measurements) != 0 {
		t.Error("unconvertible measurement kept")
	}
}

func TestMeasurementsSorted(t *testing.T) {
	g := NewMerger("turin")
	g.AddMeasurements("x", []dataformat.Measurement{
		{Device: "urn:d2", Quantity: dataformat.Temperature, Unit: dataformat.Celsius, Value: 1, Timestamp: t0},
		{Device: "urn:d1", Quantity: dataformat.Temperature, Unit: dataformat.Celsius, Value: 2, Timestamp: t0.Add(time.Minute)},
		{Device: "urn:d1", Quantity: dataformat.Temperature, Unit: dataformat.Celsius, Value: 3, Timestamp: t0},
		{Device: "urn:d1", Quantity: dataformat.Humidity, Unit: dataformat.Percent, Value: 4, Timestamp: t0},
	})
	out := g.Result()
	order := make([]float64, len(out.Measurements))
	for i, m := range out.Measurements {
		order[i] = m.Value
	}
	want := []float64{4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAreaModelLookups(t *testing.T) {
	g := NewMerger("turin")
	g.AddEntity("bim", entity("urn:b1", "B1", nil))
	g.AddMeasurements("p", []dataformat.Measurement{
		{Device: "urn:d1", Quantity: dataformat.Temperature, Unit: dataformat.Celsius, Value: 21, Timestamp: t0},
		{Device: "urn:d2", Quantity: dataformat.Temperature, Unit: dataformat.Celsius, Value: 22, Timestamp: t0},
	})
	out := g.Result()
	if _, ok := out.Entity("urn:b1"); !ok {
		t.Error("Entity lookup failed")
	}
	if _, ok := out.Entity("urn:ghost"); ok {
		t.Error("ghost entity found")
	}
	if got := out.MeasurementsFor("urn:d1"); len(got) != 1 || got[0].Value != 21 {
		t.Errorf("MeasurementsFor = %+v", got)
	}
}

func TestSummarize(t *testing.T) {
	g := NewMerger("turin")
	var ms []dataformat.Measurement
	for i := 0; i < 10; i++ {
		ms = append(ms, dataformat.Measurement{
			Device: "urn:d1", Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
			Value: 20 + float64(i), Timestamp: t0.Add(time.Duration(i) * time.Minute),
		})
	}
	ms = append(ms, dataformat.Measurement{
		Device: "urn:d1", Quantity: dataformat.Humidity, Unit: dataformat.Percent,
		Value: 50, Timestamp: t0,
	})
	g.AddMeasurements("p", ms)
	sums := g.Result().Summarize()
	if len(sums) != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	// Sorted: humidity before temperature.
	if sums[0].Quantity != dataformat.Humidity || sums[0].Count != 1 {
		t.Errorf("first = %+v", sums[0])
	}
	st := sums[1]
	if st.Count != 10 || st.Min != 20 || st.Max != 29 || st.Mean != 24.5 || st.Latest != 29 {
		t.Errorf("temperature summary = %+v", st)
	}
	if !st.LatestAt.Equal(t0.Add(9 * time.Minute)) {
		t.Errorf("LatestAt = %v", st.LatestAt)
	}
}

func TestMergerConcurrentUse(t *testing.T) {
	g := NewMerger("turin")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf("proxy%d", w)
			for i := 0; i < 50; i++ {
				uri := fmt.Sprintf("urn:b%d", i%10)
				g.AddEntity(src, entity(uri, "B", map[string]string{"w": fmt.Sprint(w)}))
				g.AddMeasurements(src, []dataformat.Measurement{{
					Device: uri, Quantity: dataformat.Temperature, Unit: dataformat.Celsius,
					Value: float64(i), Timestamp: t0.Add(time.Duration(i) * time.Second),
				}})
			}
		}(w)
	}
	wg.Wait()
	out := g.Result()
	if len(out.Entities) != 10 {
		t.Errorf("entities = %d", len(out.Entities))
	}
	if len(out.Sources) != 8 {
		t.Errorf("sources = %d", len(out.Sources))
	}
	// 10 devices x 50 distinct timestamps... values collide per device:
	// i%10 fixes device, i spans 50 → 5 samples per device at distinct
	// times; all 8 workers add the same keys → dedup to 50 total.
	if len(out.Measurements) != 50 {
		t.Errorf("measurements = %d, want 50", len(out.Measurements))
	}
}
