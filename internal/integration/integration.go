// Package integration implements the end-user side of the paper's flow:
// after the master node redirects the application to the relevant
// proxies, the application "queries directly each returned proxy and
// retrieves the model and the data for each entity", then integrates the
// translated views "in order to build a comprehensive model of the
// interested area" (§II). This package is that integration engine:
// entity merging with conflict tracking, measurement normalization and
// deduplication, and the comprehensive AreaModel.
package integration

import (
	"sort"
	"sync"
	"time"

	"repro/internal/dataformat"
)

// Conflict records two sources disagreeing on an entity property — the
// situation that makes naive database union lossy (§II: "conflicting
// values across different databases").
type Conflict struct {
	URI      string `json:"uri"`
	Property string `json:"property"`
	Kept     string `json:"kept"`
	KeptFrom string `json:"keptFrom"`
	Dropped  string `json:"dropped"`
	DropFrom string `json:"droppedFrom"`
}

// AreaModel is the comprehensive integrated model of a queried area.
type AreaModel struct {
	// District names the area's district.
	District string
	// Entities holds the merged entities, sorted by URI.
	Entities []dataformat.Entity
	// Measurements holds normalized, deduplicated samples sorted by
	// (device, quantity, timestamp).
	Measurements []dataformat.Measurement
	// Conflicts lists property disagreements between sources.
	Conflicts []Conflict
	// Sources lists the proxy sources that contributed, sorted.
	Sources []string
}

// Entity returns the merged entity with the given URI.
func (a *AreaModel) Entity(uri string) (*dataformat.Entity, bool) {
	i := sort.Search(len(a.Entities), func(i int) bool { return a.Entities[i].URI >= uri })
	if i < len(a.Entities) && a.Entities[i].URI == uri {
		return &a.Entities[i], true
	}
	return nil, false
}

// MeasurementsFor filters the model's samples by device URI.
func (a *AreaModel) MeasurementsFor(device string) []dataformat.Measurement {
	var out []dataformat.Measurement
	for _, m := range a.Measurements {
		if m.Device == device {
			out = append(out, m)
		}
	}
	return out
}

// Merger accumulates per-proxy responses into an AreaModel. It is safe
// for concurrent use: the client fetches proxies in parallel.
type Merger struct {
	district string

	mu           sync.Mutex
	entities     map[string]*dataformat.Entity
	entitySource map[string]string // URI -> first source
	measurements map[measKey]dataformat.Measurement
	conflicts    []Conflict
	sources      map[string]struct{}
	normErrs     int
}

type measKey struct {
	device   string
	quantity dataformat.Quantity
	at       int64
}

// NewMerger creates a Merger for one district's area query.
func NewMerger(district string) *Merger {
	return &Merger{
		district:     district,
		entities:     make(map[string]*dataformat.Entity),
		entitySource: make(map[string]string),
		measurements: make(map[measKey]dataformat.Measurement),
		sources:      make(map[string]struct{}),
	}
}

// AddEntity merges one translated entity (and, recursively, its
// children) from a source proxy.
func (g *Merger) AddEntity(source string, e dataformat.Entity) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sources[source] = struct{}{}
	g.addEntityLocked(source, e)
}

func (g *Merger) addEntityLocked(source string, e dataformat.Entity) {
	children := e.Children
	e.Children = nil
	existing, ok := g.entities[e.URI]
	if !ok {
		cp := e
		cp.Properties = append([]dataformat.Property(nil), e.Properties...)
		g.entities[e.URI] = &cp
		g.entitySource[e.URI] = source
	} else {
		g.mergeInto(existing, source, &e)
	}
	for _, c := range children {
		g.addEntityLocked(source, c)
		// Preserve the parent/child relation as a property so the
		// comprehensive model keeps its structure after flattening.
		child := g.entities[c.URI]
		if _, has := child.Prop("parent"); !has {
			child.SetProp("parent", e.URI, "uri")
		}
	}
}

// mergeInto folds a second source's view of an entity into the kept one,
// recording conflicts. First source wins (the paper keeps all databases
// live rather than reconciling them; the integration layer makes the
// disagreement visible instead of silently overwriting).
func (g *Merger) mergeInto(kept *dataformat.Entity, source string, next *dataformat.Entity) {
	if kept.Name == "" {
		kept.Name = next.Name
	} else if next.Name != "" && next.Name != kept.Name {
		g.conflicts = append(g.conflicts, Conflict{
			URI: kept.URI, Property: "name",
			Kept: kept.Name, KeptFrom: g.entitySource[kept.URI],
			Dropped: next.Name, DropFrom: source,
		})
	}
	if kept.Location == nil {
		kept.Location = next.Location
	}
	for _, p := range next.Properties {
		prev, has := kept.Prop(p.Name)
		if !has {
			kept.SetProp(p.Name, p.Value, p.Type)
			continue
		}
		if prev != p.Value {
			g.conflicts = append(g.conflicts, Conflict{
				URI: kept.URI, Property: p.Name,
				Kept: prev, KeptFrom: g.entitySource[kept.URI],
				Dropped: p.Value, DropFrom: source,
			})
		}
	}
}

// AddMeasurements merges samples from a source, normalizing each to its
// quantity's canonical unit and deduplicating identical samples arriving
// through different paths (e.g. a device proxy and the global
// measurements database).
func (g *Merger) AddMeasurements(source string, ms []dataformat.Measurement) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sources[source] = struct{}{}
	for _, m := range ms {
		if err := m.Normalize(); err != nil {
			g.normErrs++
			continue
		}
		key := measKey{device: m.Device, quantity: m.Quantity, at: m.Timestamp.UnixNano()}
		if _, dup := g.measurements[key]; dup {
			continue
		}
		g.measurements[key] = m
	}
}

// NormalizationErrors reports how many samples failed unit conversion.
func (g *Merger) NormalizationErrors() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.normErrs
}

// Result assembles the comprehensive area model.
func (g *Merger) Result() *AreaModel {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := &AreaModel{District: g.district}
	for _, e := range g.entities {
		out.Entities = append(out.Entities, *e)
	}
	sort.Slice(out.Entities, func(i, j int) bool { return out.Entities[i].URI < out.Entities[j].URI })
	for _, m := range g.measurements {
		out.Measurements = append(out.Measurements, m)
	}
	sort.Slice(out.Measurements, func(i, j int) bool {
		a, b := &out.Measurements[i], &out.Measurements[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Quantity != b.Quantity {
			return a.Quantity < b.Quantity
		}
		return a.Timestamp.Before(b.Timestamp)
	})
	out.Conflicts = append([]Conflict(nil), g.conflicts...)
	for s := range g.sources {
		out.Sources = append(out.Sources, s)
	}
	sort.Strings(out.Sources)
	return out
}

// Summary aggregates an area model for dashboards: latest value and
// simple statistics per (device, quantity).
type Summary struct {
	Device   string              `json:"device"`
	Quantity dataformat.Quantity `json:"quantity"`
	Unit     dataformat.Unit     `json:"unit"`
	Count    int                 `json:"count"`
	Latest   float64             `json:"latest"`
	LatestAt time.Time           `json:"latestAt"`
	Min      float64             `json:"min"`
	Max      float64             `json:"max"`
	Mean     float64             `json:"mean"`
}

// Summarize folds the model's measurements into per-series summaries,
// sorted by (device, quantity).
func (a *AreaModel) Summarize() []Summary {
	type acc struct {
		s   Summary
		sum float64
	}
	accs := make(map[measKey]*acc) // at=0: key per series
	for _, m := range a.Measurements {
		key := measKey{device: m.Device, quantity: m.Quantity}
		sc, ok := accs[key]
		if !ok {
			sc = &acc{s: Summary{
				Device: m.Device, Quantity: m.Quantity, Unit: m.Unit,
				Min: m.Value, Max: m.Value,
			}}
			accs[key] = sc
		}
		sc.s.Count++
		sc.sum += m.Value
		if m.Value < sc.s.Min {
			sc.s.Min = m.Value
		}
		if m.Value > sc.s.Max {
			sc.s.Max = m.Value
		}
		if !m.Timestamp.Before(sc.s.LatestAt) {
			sc.s.LatestAt = m.Timestamp
			sc.s.Latest = m.Value
		}
	}
	out := make([]Summary, 0, len(accs))
	for _, sc := range accs {
		sc.s.Mean = sc.sum / float64(sc.s.Count)
		out = append(out, sc.s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Quantity < out[j].Quantity
	})
	return out
}
