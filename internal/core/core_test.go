package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dataformat"
	"repro/internal/ontology"
)

// bootstrapSmall spins a compact district exercising every protocol.
func bootstrapSmall(t *testing.T) *District {
	t.Helper()
	d, err := Bootstrap(Spec{
		Buildings:          2,
		Networks:           1,
		DevicesPerBuilding: 4, // one of each protocol
		PollEvery:          30 * time.Millisecond,
		Seed:               11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestBootstrapShape(t *testing.T) {
	d := bootstrapSmall(t)
	if len(d.BIMs) != 2 || len(d.SIMs) != 1 || len(d.DeviceProxies) != 8 {
		t.Fatalf("shape: %d BIMs, %d SIMs, %d device proxies",
			len(d.BIMs), len(d.SIMs), len(d.DeviceProxies))
	}
	// Everything registered on the master: 2 BIM + 1 SIM + 1 GIS + 8 dev.
	if got := d.Master.Registry().Len(); got != 12 {
		t.Errorf("registrations = %d, want 12", got)
	}
	if d.GIS.Store().Len() != 2 {
		t.Errorf("gis features = %d", d.GIS.Store().Len())
	}
}

func TestEndToEndAreaQuery(t *testing.T) {
	d := bootstrapSmall(t)
	if !d.WaitForSamples(2, 10*time.Second) {
		t.Fatal("device proxies produced no samples")
	}
	c := d.Client()
	ctx := context.Background()
	model, err := c.BuildAreaModel(ctx, d.Spec.District, client.Area{}, client.BuildOptions{
		IncludeDevices: true,
		IncludeGIS:     true,
	})
	if err != nil {
		t.Fatalf("BuildAreaModel: %v", err)
	}
	if len(model.Entities) == 0 {
		t.Fatal("empty area model")
	}
	// Buildings present with BIM-derived properties.
	b0, ok := model.Entity("urn:district:turin/building:b00")
	if !ok {
		t.Fatal("building b00 missing from model")
	}
	if _, ok := b0.Prop("envelopeUA.WperK"); !ok {
		t.Error("BIM property missing")
	}
	// GIS contributed bounds for the same URI (merged entity).
	if _, ok := b0.Prop("bounds"); !ok {
		t.Error("GIS property missing (merge failed)")
	}
	// Network model present with solved flows.
	if _, ok := model.Entity("urn:district:turin/network:dh00"); !ok {
		t.Error("network missing from model")
	}
	// Measurements from the devices, normalized.
	if len(model.Measurements) == 0 {
		t.Fatal("no measurements integrated")
	}
	for _, m := range model.Measurements {
		if m.Quantity == dataformat.Temperature && m.Unit != dataformat.Celsius {
			t.Errorf("non-canonical unit %q", m.Unit)
		}
	}
	summaries := model.Summarize()
	if len(summaries) == 0 {
		t.Fatal("no summaries")
	}
}

func TestAreaFilteringReducesScope(t *testing.T) {
	d := bootstrapSmall(t)
	c := d.Client()
	ctx := context.Background()
	whole, err := c.Query(ctx, d.Spec.District, client.Area{})
	if err != nil {
		t.Fatal(err)
	}
	if len(whole.Entities) != 3 { // 2 buildings + 1 network
		t.Fatalf("whole district = %d entities", len(whole.Entities))
	}
	// A postage-stamp area around building b00 only.
	node, err := d.Master.Ontology().Get("urn:district:turin/building:b00")
	if err != nil {
		t.Fatal(err)
	}
	small, err := c.Query(ctx, d.Spec.District, client.Area{
		MinLat: node.Lat - 1e-6, MinLon: node.Lon - 1e-6,
		MaxLat: node.Lat + 1e-6, MaxLon: node.Lon + 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Entities) != 1 || small.Entities[0].URI != "urn:district:turin/building:b00" {
		t.Fatalf("area query = %+v", small.Entities)
	}
}

func TestMeasurementsReachGlobalDatabase(t *testing.T) {
	d := bootstrapSmall(t)
	if !d.WaitForSamples(2, 10*time.Second) {
		t.Fatal("no samples")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if d.Measure.Stats().Ingested > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("global measurements DB ingested nothing; stats = %+v", d.Measure.Stats())
}

func TestActuationThroughInfrastructure(t *testing.T) {
	d := bootstrapSmall(t)
	c := d.Client()
	ctx := context.Background()
	// Find a ZigBee device (it actuates state.switch).
	devices, err := c.Catalog().Devices(ctx, "urn:district:turin/building:b00")
	if err != nil {
		t.Fatal(err)
	}
	var proxyURI string
	for _, dev := range devices {
		info, err := c.FetchDeviceInfo(ctx, dev.ProxyURI)
		if err != nil {
			continue
		}
		for _, q := range info.Actuates {
			if q == dataformat.SwitchState {
				proxyURI = dev.ProxyURI
			}
		}
	}
	if proxyURI == "" {
		t.Fatal("no switchable device found")
	}
	result, err := c.Control(ctx, proxyURI, dataformat.SwitchState, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Applied {
		t.Fatalf("control not applied: %+v", result)
	}
	// The new state is visible on the next poll.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m, err := c.FetchLatest(ctx, proxyURI, dataformat.SwitchState)
		if err == nil && m.Value == 1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("switch state never observed as on")
}

func TestDeviceResolutionsCarryProtocol(t *testing.T) {
	d := bootstrapSmall(t)
	c := d.Client()
	ctx := context.Background()
	devices, err := c.Catalog().Devices(ctx, "urn:district:turin/building:b00")
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 4 {
		t.Fatalf("devices = %d", len(devices))
	}
	protos := map[string]bool{}
	for _, dev := range devices {
		protos[dev.Extra[ontology.PropProtocol]] = true
	}
	for _, want := range []string{"zigbee", "ieee802.15.4", "enocean", "opc-ua"} {
		if !protos[want] {
			t.Errorf("protocol %s missing from resolutions: %v", want, protos)
		}
	}
}

func TestBootstrapDefaults(t *testing.T) {
	spec := (&Spec{}).withDefaults()
	if spec.District != "turin" || spec.Buildings != 3 || spec.PollEvery <= 0 {
		t.Errorf("defaults = %+v", spec)
	}
}
