// Package core is the framework facade of the reproduction: it wires
// every subsystem of the paper's infrastructure — master node with its
// ontology, middleware network, global measurements database, GIS / BIM
// / SIM Database-proxies, and device-proxies over simulated WSN hardware
// — into one running district. It is the paper's "infrastructure model"
// as a callable API: examples, the districtsim binary, the integration
// tests and the benchmark harness all bootstrap districts through it.
package core

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/api"
	"repro/internal/bim"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/dataformat"
	"repro/internal/dbproxy"
	"repro/internal/deviceproxy"
	"repro/internal/gis"
	"repro/internal/master"
	"repro/internal/measuredb"
	"repro/internal/middleware"
	"repro/internal/ontology"
	"repro/internal/protocol/enocean"
	"repro/internal/protocol/ieee802154"
	"repro/internal/sim"
	"repro/internal/tsdb"
	"repro/internal/wal"
	"repro/internal/wsn"
)

// Protocol names the device technologies the bootstrap can deploy.
type Protocol string

// Deployable protocols, matching the paper's proxy list.
const (
	ProtoIEEE802154 Protocol = "ieee802.15.4"
	ProtoZigBee     Protocol = "zigbee"
	ProtoEnOcean    Protocol = "enocean"
	ProtoOPCUA      Protocol = "opc-ua"
)

// AllProtocols is the default deployment rotation.
var AllProtocols = []Protocol{ProtoZigBee, ProtoIEEE802154, ProtoEnOcean, ProtoOPCUA}

// Spec sizes a synthetic district.
type Spec struct {
	// District is the district identifier (default "turin").
	District string
	// Buildings is the number of buildings (default 3).
	Buildings int
	// Networks is the number of distribution networks (default 1).
	Networks int
	// DevicesPerBuilding is the number of sensor devices per building
	// (default 2), rotated over Protocols.
	DevicesPerBuilding int
	// Protocols is the deployment rotation (default AllProtocols).
	Protocols []Protocol
	// PollEvery is the device-proxy sampling period (default 200ms).
	PollEvery time.Duration
	// Seed drives all synthetic generation (default 1).
	Seed int64
	// LegacyAliases keeps the unversioned route aliases on every
	// service. Off by default: the infrastructure is /v1+/v2-only, the
	// -legacy-aliases flag of the drivers is the escape hatch.
	LegacyAliases bool
	// MeasureReadRate, when positive, rate-limits the measurements DB's
	// cheap read routes per client IP (requests/second, the "read"
	// tier). MeasureBatchRate does the same for POST /v2/query (the
	// "batch" tier, typically much lower — each batch fans out over
	// many series), and MeasureWriteRate for the /v2 ingest plane (the
	// "write" tier). Per-tier limiter stats surface in /v1/metrics.
	MeasureReadRate  float64
	MeasureBatchRate float64
	MeasureWriteRate float64
	// MeasureShards partitions the measurements DB's storage engine by
	// device hash (0 = the engine default).
	MeasureShards int
	// MeasureNodes deploys the measurements DB as a multi-host cluster:
	// this many shard-owning nodes behind one coordinator, with the
	// master publishing a round-robin shard map. 0 or 1 keeps the
	// classic single-service deployment. MeasureURL then points at the
	// coordinator; the /v2 surface is unchanged for clients.
	MeasureNodes int
	// BusWrites routes device-proxy samples to the measurements DB over
	// the deprecated middleware bus hop instead of the batched /v2
	// ingest plane — the escape hatch while external deployments
	// migrate.
	BusWrites bool
	// DataDir enables the durable storage layer under the measurements
	// DB (in <DataDir>/measuredb): per-shard WAL + snapshots beneath the
	// tsdb engine, a journaled stream replay ring (SSE Last-Event-ID
	// resume survives a service restart), and a persisted ingest
	// idempotency window. Empty keeps the district fully in-memory — the
	// default, so existing tests and benches are unaffected.
	DataDir string
	// FsyncMode is the WAL fsync policy: "none" (default — acked writes
	// survive a process kill, not a machine crash), "interval", or
	// "always" (fsync before ack, group-committed per shard).
	FsyncMode string
	// SnapshotEvery compacts each tsdb shard's WAL into a snapshot
	// after this many appended rows (0 = engine default).
	SnapshotEvery int
	// HeadWindow bounds how much recent data each storage shard keeps in
	// its RAM head with DataDir set; older samples compact into columnar
	// block files (0 = engine default, 30m; negative disables blocks).
	HeadWindow time.Duration
	// RetentionRaw is how long raw samples are kept before compaction
	// demotes them to 1m/1h rollups (0 = forever).
	RetentionRaw time.Duration
	// RetentionRollup is how long rollups of raw-expired data are kept
	// before they are dropped entirely (0 = forever).
	RetentionRollup time.Duration
	// QCacheBytes bounds the measurements DB's generation-keyed query
	// result cache — and, in a clustered deployment, the coordinator's
	// per-device proxy cache. 0 (the default) disables both, preserving
	// uncached behavior exactly.
	QCacheBytes int64
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof
	// on the master, measurements DB, and every device proxy.
	EnablePprof bool
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.District == "" {
		out.District = "turin"
	}
	if out.Buildings <= 0 {
		out.Buildings = 3
	}
	if out.Networks <= 0 {
		out.Networks = 1
	}
	if out.DevicesPerBuilding <= 0 {
		out.DevicesPerBuilding = 2
	}
	if len(out.Protocols) == 0 {
		out.Protocols = AllProtocols
	}
	if out.PollEvery <= 0 {
		out.PollEvery = 200 * time.Millisecond
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// District is a fully wired, running district infrastructure.
type District struct {
	// Spec is the effective (defaulted) specification.
	Spec Spec
	// Master is the master node; MasterURL its HTTP base URL.
	Master    *master.Master
	MasterURL string
	// Hub is the middleware relay node; HubAddr its TCP address.
	Hub     *middleware.Node
	HubAddr string
	// Measure is the global measurements database service. In a
	// clustered deployment (Spec.MeasureNodes > 1) it is nil:
	// MeasureNodes holds the shard owners, Coordinator the router, and
	// MeasureURL points at the coordinator.
	Measure    *measuredb.Service
	MeasureURL string
	// MeasureNodes and MeasureNodeURLs are the cluster's shard-owning
	// nodes (clustered deployments only).
	MeasureNodes    []*measuredb.Service
	MeasureNodeURLs []string
	// Coordinator is the cluster's query/ingest router (clustered
	// deployments only).
	Coordinator *measuredb.Coordinator
	// GIS is the district geographic database proxy.
	GIS *dbproxy.GISProxy
	// BIMs and SIMs are the per-building / per-network proxies.
	BIMs []*dbproxy.BIMProxy
	SIMs []*dbproxy.SIMProxy
	// DeviceProxies are the running device proxies, one per device.
	DeviceProxies []*deviceproxy.Proxy

	pubNode *middleware.Node
	ingest  *client.Batcher
	closers []func()
}

// Bootstrap builds and starts a synthetic district per the spec.
// The returned District owns every component; Close tears it all down.
func Bootstrap(spec Spec) (*District, error) {
	spec = spec.withDefaults()
	d := &District{Spec: spec}
	ok := false
	defer func() {
		if !ok {
			d.Close()
		}
	}()

	// Master node: the unique entry point.
	d.Master = master.New(master.Options{
		DisableLegacyAliases: !spec.LegacyAliases,
		EnablePprof:          spec.EnablePprof,
	})
	addr, err := d.Master.Serve("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: master: %w", err)
	}
	d.MasterURL = "http://" + addr
	d.closers = append(d.closers, d.Master.Close)

	// Middleware hub and the leaf node proxies publish through.
	d.Hub = middleware.NewNode(middleware.NodeOptions{ID: "hub:" + spec.District, Relay: true})
	hubAddr, err := d.Hub.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: middleware hub: %w", err)
	}
	d.HubAddr = hubAddr
	d.closers = append(d.closers, d.Hub.Close)

	d.pubNode = middleware.NewNode(middleware.NodeOptions{ID: "pub:" + spec.District})
	if err := d.pubNode.Dial(hubAddr); err != nil {
		return nil, fmt.Errorf("core: publisher node: %w", err)
	}
	d.closers = append(d.closers, d.pubNode.Close)

	// Global measurements database, fed from the middleware.
	limiter := func(rate float64) *api.RateLimiter {
		if rate <= 0 {
			return nil
		}
		return api.NewRateLimiter(rate, int(rate*2)+1)
	}
	newMeasureOpts := func(dataDir string, clusterOpts *measuredb.ClusterOptions) (measuredb.Options, error) {
		mopts := measuredb.Options{
			DisableLegacyAliases: !spec.LegacyAliases,
			EnablePprof:          spec.EnablePprof,
			Shards:               spec.MeasureShards,
			ReadLimiter:          limiter(spec.MeasureReadRate),
			BatchLimiter:         limiter(spec.MeasureBatchRate),
			WriteLimiter:         limiter(spec.MeasureWriteRate),
			QCacheBytes:          spec.QCacheBytes,
			Cluster:              clusterOpts,
		}
		if spec.DataDir != "" {
			mode, err := wal.ParseMode(spec.FsyncMode)
			if err != nil {
				return mopts, fmt.Errorf("core: %w", err)
			}
			mopts.DataDir = filepath.Join(spec.DataDir, dataDir)
			mopts.Fsync = mode
			mopts.SnapshotEvery = spec.SnapshotEvery
			mopts.Blocks = tsdb.BlockPolicy{
				HeadWindow:      spec.HeadWindow,
				RetentionRaw:    spec.RetentionRaw,
				RetentionRollup: spec.RetentionRollup,
			}
		}
		return mopts, nil
	}
	if spec.MeasureNodes > 1 {
		if err := d.bootstrapMeasureCluster(spec, hubAddr, newMeasureOpts); err != nil {
			return nil, err
		}
	} else {
		mopts, err := newMeasureOpts("measuredb", nil)
		if err != nil {
			return nil, err
		}
		d.Measure, err = measuredb.Open(mopts)
		if err != nil {
			return nil, fmt.Errorf("core: measuredb: %w", err)
		}
		measureAddr, err := d.Measure.Serve("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("core: measuredb: %w", err)
		}
		d.MeasureURL = "http://" + measureAddr
		measureNode := middleware.NewNode(middleware.NodeOptions{ID: "measure:" + spec.District})
		if _, err := d.Measure.AttachNode(measureNode); err != nil {
			return nil, fmt.Errorf("core: measuredb subscribe: %w", err)
		}
		if err := measureNode.Dial(hubAddr); err != nil {
			return nil, fmt.Errorf("core: measuredb node: %w", err)
		}
		d.closers = append(d.closers, measureNode.Close, d.Measure.Close)
	}

	// The device proxies' write path: one shared auto-flushing /v2
	// ingest batcher (unless the deprecated bus hop is requested). It
	// closes — final flush included — before the measurements DB does,
	// and after the proxies stop sampling.
	if !spec.BusWrites {
		d.ingest = (&client.Client{}).Ingest(d.MeasureURL).Batcher(client.BatcherOptions{
			MaxRows:    512,
			FlushEvery: 200 * time.Millisecond,
		})
		d.closers = append(d.closers, d.ingest.Close)
	}

	// Ontology root.
	ont := d.Master.Ontology()
	districtURI, err := ont.AddDistrict(spec.District, spec.District)
	if err != nil {
		return nil, err
	}
	_ = ont.SetProperty(districtURI, ontology.PropMeasureURI, d.MeasureURL+"/")

	// GIS database + proxy.
	gisStore := gis.NewStore(0)
	d.GIS = dbproxy.NewGISProxy(spec.District, gisStore)
	d.GIS.SetLegacyAliases(spec.LegacyAliases)
	gisAddr, err := d.GIS.Run("127.0.0.1:0", d.MasterURL)
	if err != nil {
		return nil, fmt.Errorf("core: gis proxy: %w", err)
	}
	_ = ont.SetProperty(districtURI, ontology.PropGISURI, "http://"+gisAddr+"/")
	d.closers = append(d.closers, d.GIS.Close)

	// Buildings: BIM + BIM proxy + ontology node + GIS footprint + devices.
	for b := 0; b < spec.Buildings; b++ {
		if err := d.addBuilding(districtURI, b); err != nil {
			return nil, err
		}
	}

	// Distribution networks: SIM + SIM proxy + ontology node.
	for n := 0; n < spec.Networks; n++ {
		network := sim.Synthesize(sim.SynthOptions{
			ID:          fmt.Sprintf("dh%02d", n),
			Substations: spec.Buildings,
			Seed:        spec.Seed + int64(n)*1000,
		})
		proxy, err := dbproxy.NewSIMProxy(spec.District, network)
		if err != nil {
			return nil, err
		}
		proxy.SetLegacyAliases(spec.LegacyAliases)
		plant := network.Plant()
		netURI, err := ont.AddEntity(districtURI, ontology.KindNetwork, network.ID, network.Name, plant.Lat, plant.Lon)
		if err != nil {
			return nil, err
		}
		if _, err := proxy.Run("127.0.0.1:0", d.MasterURL); err != nil {
			return nil, fmt.Errorf("core: sim proxy %s: %w", network.ID, err)
		}
		_ = netURI
		d.SIMs = append(d.SIMs, proxy)
		d.closers = append(d.closers, proxy.Close)
	}
	ok = true
	return d, nil
}

// bootstrapMeasureCluster deploys the measurements DB as
// Spec.MeasureNodes shard-owning nodes behind one coordinator: each
// node runs the full sharded engine (unowned shards stay empty), hears
// the middleware bus through its own leaf node (the ownership guard
// keeps broadcast rows single-copy), the master publishes a round-robin
// shard map, and the coordinator routes the /v2 plane over it.
func (d *District) bootstrapMeasureCluster(spec Spec, hubAddr string, newMeasureOpts func(string, *measuredb.ClusterOptions) (measuredb.Options, error)) error {
	shards := spec.MeasureShards
	if shards <= 0 {
		shards = tsdb.DefaultShards
	}
	for i := 0; i < spec.MeasureNodes; i++ {
		mopts, err := newMeasureOpts(fmt.Sprintf("measuredb-%d", i), &measuredb.ClusterOptions{Master: d.MasterURL})
		if err != nil {
			return err
		}
		mopts.Shards = shards // every node must agree on the shard count
		node, err := measuredb.Open(mopts)
		if err != nil {
			return fmt.Errorf("core: measuredb node %d: %w", i, err)
		}
		d.closers = append(d.closers, node.Close)
		addr, err := node.Serve("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("core: measuredb node %d: %w", i, err)
		}
		nodeURL := "http://" + addr
		node.SetClusterSelf(nodeURL)
		leaf := middleware.NewNode(middleware.NodeOptions{ID: fmt.Sprintf("measure%d:%s", i, spec.District)})
		if _, err := node.AttachNode(leaf); err != nil {
			return fmt.Errorf("core: measuredb node %d subscribe: %w", i, err)
		}
		if err := leaf.Dial(hubAddr); err != nil {
			return fmt.Errorf("core: measuredb node %d bus: %w", i, err)
		}
		d.closers = append(d.closers, leaf.Close)
		d.MeasureNodes = append(d.MeasureNodes, node)
		d.MeasureNodeURLs = append(d.MeasureNodeURLs, nodeURL)
	}
	// Publish the initial round-robin map before any ingest starts, so
	// the very first routed write already sees the real topology.
	owners := make([]string, shards)
	for i := range owners {
		owners[i] = d.MeasureNodeURLs[i%len(d.MeasureNodeURLs)]
	}
	if _, err := d.Master.ClusterMap().Set(cluster.Map{Shards: shards, Owners: owners}); err != nil {
		return fmt.Errorf("core: publish shard map: %w", err)
	}
	coord, err := measuredb.OpenCoordinator(measuredb.CoordinatorOptions{
		Master:      d.MasterURL,
		EnablePprof: spec.EnablePprof,
		QCacheBytes: spec.QCacheBytes,
	})
	if err != nil {
		return fmt.Errorf("core: coordinator: %w", err)
	}
	d.Coordinator = coord
	d.closers = append(d.closers, coord.Close)
	addr, err := coord.Serve("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("core: coordinator: %w", err)
	}
	d.MeasureURL = "http://" + addr
	return nil
}

// addBuilding creates one building with its BIM proxy and devices.
func (d *District) addBuilding(districtURI string, index int) error {
	spec := d.Spec
	ont := d.Master.Ontology()
	building := bim.Synthesize(bim.SynthOptions{
		ID:              fmt.Sprintf("b%02d", index),
		Storeys:         2,
		SpacesPerStorey: 2,
		DevicesPerSpace: 0,
		Seed:            spec.Seed + int64(index)*77,
	})
	buildingURI, err := ont.AddEntity(districtURI, ontology.KindBuilding, building.ID, building.Name, building.Lat, building.Lon)
	if err != nil {
		return err
	}
	// GIS footprint: a small square around the building position.
	const half = 0.0004
	err = d.GIS.Store().Add(gis.Feature{
		ID: buildingURI, Kind: gis.FeatureBuilding, Name: building.Name,
		Footprint: []gis.Point{
			{Lat: building.Lat - half, Lon: building.Lon - half},
			{Lat: building.Lat + half, Lon: building.Lon - half},
			{Lat: building.Lat + half, Lon: building.Lon + half},
			{Lat: building.Lat - half, Lon: building.Lon + half},
		},
	})
	if err != nil {
		return err
	}

	// Devices (and their URIs inside the BIM spaces).
	for i := 0; i < spec.DevicesPerBuilding; i++ {
		proto := spec.Protocols[i%len(spec.Protocols)]
		deviceID := fmt.Sprintf("d%02d", i)
		deviceURI := ontology.DeviceURI(buildingURI, deviceID)
		// Place the device in a BIM space round-robin.
		st := &building.Storeys[i%len(building.Storeys)]
		sp := &st.Spaces[i%len(st.Spaces)]
		sp.Devices = append(sp.Devices, deviceURI)

		if _, err := ont.AddDevice(buildingURI, deviceID, fmt.Sprintf("%s sensor %d", proto, i), building.Lat, building.Lon); err != nil {
			return err
		}
		if err := d.addDevice(deviceURI, proto, spec.Seed+int64(index*100+i)); err != nil {
			return fmt.Errorf("core: device %s: %w", deviceURI, err)
		}
	}

	proxy, err := dbproxy.NewBIMProxy(spec.District, building)
	if err != nil {
		return err
	}
	proxy.SetLegacyAliases(spec.LegacyAliases)
	if _, err := proxy.Run("127.0.0.1:0", d.MasterURL); err != nil {
		return fmt.Errorf("core: bim proxy %s: %w", building.ID, err)
	}
	d.BIMs = append(d.BIMs, proxy)
	d.closers = append(d.closers, proxy.Close)
	return nil
}

// addDevice spins one simulated device and its device proxy.
func (d *District) addDevice(deviceURI string, proto Protocol, seed int64) error {
	signals := map[dataformat.Quantity]wsn.Signal{
		dataformat.Temperature: {Base: 21, Amplitude: 2, Period: 24 * time.Hour, NoiseStd: 0.1, Min: -10, Max: 40},
		dataformat.Humidity:    {Base: 45, Amplitude: 8, Period: 24 * time.Hour, NoiseStd: 0.8, Min: 0, Max: 100},
	}
	senses := []dataformat.Quantity{dataformat.Temperature, dataformat.Humidity}
	var driver deviceproxy.Driver
	var actuates []dataformat.Quantity
	switch proto {
	case ProtoIEEE802154:
		radio := ieee802154.NewRadio(ieee802154.RadioOptions{Seed: seed})
		node, err := wsn.NewNode802154(radio, 0x0D15, 0x0010, signals, seed)
		if err != nil {
			return err
		}
		drv, err := wsn.NewDriver802154(radio, 0x0D15, 0x0001, 0x0010, len(signals))
		if err != nil {
			return err
		}
		driver = drv
		d.closers = append(d.closers, node.Close, radio.Close)
	case ProtoZigBee:
		radio := ieee802154.NewRadio(ieee802154.RadioOptions{Seed: seed})
		node, err := wsn.NewNodeZigbee(radio, 0x0D15, 0x0020, signals, true, seed)
		if err != nil {
			return err
		}
		drv, err := wsn.NewDriverZigbee(radio, 0x0D15, 0x0002, 0x0020,
			[]dataformat.Quantity{dataformat.Temperature, dataformat.Humidity, dataformat.SwitchState})
		if err != nil {
			return err
		}
		driver = drv
		senses = append(senses, dataformat.SwitchState)
		actuates = []dataformat.Quantity{dataformat.SwitchState}
		d.closers = append(d.closers, node.Close, radio.Close)
	case ProtoEnOcean:
		link := &wsn.SerialLink{}
		sender := uint32(0x01800000) + uint32(seed&0xFFFF)
		node := wsn.NewNodeEnOcean(link, enocean.EEPTempHumA50401, sender, signals, seed)
		node.Start(d.Spec.PollEvery / 2)
		node.Emit() // make the first poll succeed immediately
		driver = wsn.NewDriverEnOcean(link, enocean.EEPTempHumA50401, sender, nil)
		d.closers = append(d.closers, node.Close)
	case ProtoOPCUA:
		node, err := wsn.NewNodeOPCUA(signals, []dataformat.Quantity{dataformat.Temperature}, seed)
		if err != nil {
			return err
		}
		drv, err := wsn.NewDriverOPCUA(node.Addr(), senses, []dataformat.Quantity{dataformat.Temperature})
		if err != nil {
			node.Close()
			return err
		}
		driver = drv
		actuates = []dataformat.Quantity{dataformat.Temperature}
		d.closers = append(d.closers, node.Close)
	default:
		return fmt.Errorf("core: unknown protocol %q", proto)
	}

	opts := deviceproxy.Options{
		DeviceURI:            deviceURI,
		Name:                 string(proto) + " device",
		Driver:               driver,
		Senses:               senses,
		Actuates:             actuates,
		PollEvery:            d.Spec.PollEvery,
		MasterURL:            d.MasterURL,
		DisableLegacyAliases: !d.Spec.LegacyAliases,
		EnablePprof:          d.Spec.EnablePprof,
	}
	if d.ingest != nil {
		opts.Writer = d.ingest // batched /v2 ingest plane
	} else {
		opts.Publisher = d.pubNode // deprecated bus hop (Spec.BusWrites)
	}
	proxy, err := deviceproxy.New(opts)
	if err != nil {
		return err
	}
	if _, err := proxy.Run("127.0.0.1:0"); err != nil {
		return err
	}
	d.DeviceProxies = append(d.DeviceProxies, proxy)
	d.closers = append(d.closers, proxy.Close)
	return nil
}

// Client returns an end-user client bound to the district's master.
func (d *District) Client() *client.Client {
	return &client.Client{MasterURL: d.MasterURL}
}

// WaitForSamples blocks until every device proxy has buffered at least
// n samples or the timeout elapses; it reports whether the goal was met.
func (d *District) WaitForSamples(n uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, p := range d.DeviceProxies {
			if p.Stats().Samples < n {
				all = false
				break
			}
		}
		if all {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// Close tears the district down in reverse construction order.
func (d *District) Close() {
	for i := len(d.closers) - 1; i >= 0; i-- {
		d.closers[i]()
	}
	d.closers = nil
}
