package dataformat

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleMeasurement() Measurement {
	return Measurement{
		Source:    "http://127.0.0.1:9001/",
		Device:    "urn:district:turin/building:b01/device:t-12",
		Protocol:  "zigbee",
		Quantity:  Temperature,
		Unit:      Celsius,
		Value:     21.5,
		Timestamp: time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC),
		Location:  &Location{Latitude: 45.0628, Longitude: 7.6624},
		Tags:      map[string]string{"room": "DAUIN-21"},
	}
}

func TestConvertIdentity(t *testing.T) {
	for _, u := range []Unit{Celsius, Watt, Percent, Unitless} {
		got, err := Convert(42, u, u)
		if err != nil {
			t.Fatalf("Convert identity %q: %v", u, err)
		}
		if got != 42 {
			t.Errorf("Convert(42, %q, %q) = %v, want 42", u, u, got)
		}
	}
}

func TestConvertKnownPairs(t *testing.T) {
	tests := []struct {
		from, to Unit
		in, want float64
	}{
		{Celsius, Kelvin, 0, 273.15},
		{Celsius, Fahrenheit, 100, 212},
		{Fahrenheit, Celsius, 32, 0},
		{Kelvin, Celsius, 273.15, 0},
		{Kilowatt, Watt, 1.5, 1500},
		{WattHour, Joule, 1, 3600},
		{KilowattHour, Joule, 1, 3.6e6},
		{Bar, Pascal, 2, 2e5},
		{CubicMPerHour, LitrePerSec, 3.6, 1},
	}
	for _, tc := range tests {
		got, err := Convert(tc.in, tc.from, tc.to)
		if err != nil {
			t.Fatalf("Convert(%v, %q, %q): %v", tc.in, tc.from, tc.to, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Convert(%v, %q, %q) = %v, want %v", tc.in, tc.from, tc.to, got, tc.want)
		}
	}
}

func TestConvertUnknownPair(t *testing.T) {
	if _, err := Convert(1, Celsius, Watt); err == nil {
		t.Fatal("Convert(degC -> W) succeeded, want error")
	}
}

// Every conversion pair that has an inverse must round-trip.
func TestConvertRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true // out of physical range; skip
		}
		for pair := range conversions {
			there, err := Convert(v, pair[0], pair[1])
			if err != nil {
				return false
			}
			back, err := Convert(there, pair[1], pair[0])
			if err != nil {
				// inverse not defined for this pair; acceptable only if absent
				if _, ok := conversions[[2]Unit{pair[1], pair[0]}]; ok {
					return false
				}
				continue
			}
			if math.Abs(back-v) > 1e-6*(1+math.Abs(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEveryConversionHasInverse(t *testing.T) {
	for pair := range conversions {
		if _, ok := conversions[[2]Unit{pair[1], pair[0]}]; !ok {
			t.Errorf("conversion %q -> %q has no inverse", pair[0], pair[1])
		}
	}
}

func TestCanonicalUnitsConvertible(t *testing.T) {
	// Any unit that appears in a conversion pair with a canonical unit
	// must convert to it; the canonical unit itself must be known.
	for q, u := range canonicalUnits {
		if u == "" && q != "" {
			continue
		}
		got, ok := CanonicalUnit(q)
		if !ok || got != u {
			t.Errorf("CanonicalUnit(%q) = %q, %v", q, got, ok)
		}
	}
}

func TestMeasurementValidate(t *testing.T) {
	m := sampleMeasurement()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid measurement rejected: %v", err)
	}
	bad := m
	bad.Device = ""
	if err := bad.Validate(); err == nil {
		t.Error("measurement without device accepted")
	}
	bad = m
	bad.Quantity = ""
	if err := bad.Validate(); err == nil {
		t.Error("measurement without quantity accepted")
	}
	bad = m
	bad.Timestamp = time.Time{}
	if err := bad.Validate(); err == nil {
		t.Error("measurement without timestamp accepted")
	}
}

func TestMeasurementNormalize(t *testing.T) {
	m := sampleMeasurement()
	m.Unit = Fahrenheit
	m.Value = 212
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	if m.Unit != Celsius || math.Abs(m.Value-100) > 1e-9 {
		t.Errorf("Normalize = %v %q, want 100 degC", m.Value, m.Unit)
	}
	// Already canonical: no-op.
	before := m.Value
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	if m.Value != before {
		t.Error("Normalize changed an already-canonical value")
	}
}

func TestMeasurementNormalizeUnknownQuantity(t *testing.T) {
	m := sampleMeasurement()
	m.Quantity = "exotic"
	m.Unit = "furlong"
	if err := m.Normalize(); err != nil {
		t.Fatalf("Normalize of unknown quantity should be a no-op, got %v", err)
	}
	if m.Unit != "furlong" {
		t.Error("Normalize altered unknown quantity")
	}
}

func TestEntityPropRoundTrip(t *testing.T) {
	e := Entity{URI: "urn:district:turin", Kind: EntityDistrict}
	if _, ok := e.Prop("name"); ok {
		t.Fatal("Prop on empty entity returned ok")
	}
	e.SetProp("name", "Torino", "string")
	e.SetProp("area", "130.0", "float")
	if v, ok := e.Prop("name"); !ok || v != "Torino" {
		t.Errorf("Prop(name) = %q, %v", v, ok)
	}
	e.SetProp("name", "Turin", "string")
	if v, _ := e.Prop("name"); v != "Turin" {
		t.Errorf("SetProp did not replace: %q", v)
	}
	if len(e.Properties) != 2 {
		t.Errorf("len(Properties) = %d, want 2", len(e.Properties))
	}
}

func TestEntityValidateRecursive(t *testing.T) {
	e := Entity{
		URI:  "urn:district:turin",
		Kind: EntityDistrict,
		Children: []Entity{
			{URI: "urn:district:turin/building:b01", Kind: EntityBuilding},
			{URI: "", Kind: EntityBuilding},
		},
	}
	if err := e.Validate(); err == nil {
		t.Fatal("entity with invalid child accepted")
	}
}

func TestDocumentRoundTripJSONAndXML(t *testing.T) {
	doc := NewMeasurementsDoc([]Measurement{sampleMeasurement(), sampleMeasurement()})
	for _, enc := range []Encoding{JSON, XML} {
		b, err := doc.Encode(enc)
		if err != nil {
			t.Fatalf("%s encode: %v", enc, err)
		}
		got, err := Decode(b, enc)
		if err != nil {
			t.Fatalf("%s decode: %v", enc, err)
		}
		if got.Kind != KindMeasurements || len(got.Measurements) != 2 {
			t.Fatalf("%s round trip lost payload: %+v", enc, got)
		}
		m := got.Measurements[0]
		if m.Device != doc.Measurements[0].Device ||
			m.Quantity != doc.Measurements[0].Quantity ||
			m.Value != doc.Measurements[0].Value ||
			!m.Timestamp.Equal(doc.Measurements[0].Timestamp) {
			t.Errorf("%s round trip mutated measurement: %+v", enc, m)
		}
	}
}

func TestEntityDocRoundTrip(t *testing.T) {
	e := Entity{
		URI: "urn:district:turin", Kind: EntityDistrict, Name: "Torino",
		Location:   &Location{Latitude: 45.07, Longitude: 7.68},
		Properties: []Property{{Name: "gis", Value: "http://gis/", Type: "uri"}},
		Children: []Entity{{
			URI: "urn:district:turin/building:b01", Kind: EntityBuilding,
			Properties: []Property{{Name: "bim", Value: "http://bim1/", Type: "uri"}},
		}},
	}
	for _, enc := range []Encoding{JSON, XML} {
		b, err := NewEntityDoc(e).Encode(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b, enc)
		if err != nil {
			t.Fatalf("%s: %v\n%s", enc, err, b)
		}
		if got.Entity == nil || len(got.Entity.Children) != 1 {
			t.Fatalf("%s round trip lost children: %+v", enc, got.Entity)
		}
		if v, ok := got.Entity.Children[0].Prop("bim"); !ok || v != "http://bim1/" {
			t.Errorf("%s round trip lost child property", enc)
		}
	}
}

func TestDocumentValidate(t *testing.T) {
	cases := []struct {
		name string
		doc  Document
		ok   bool
	}{
		{"no version", Document{Kind: KindMeasurement, Measurement: &Measurement{}}, false},
		{"unknown kind", Document{Version: Version, Kind: "bogus"}, false},
		{"kind without payload", Document{Version: Version, Kind: KindMeasurement}, false},
		{"entity without payload", Document{Version: Version, Kind: KindEntity}, false},
		{"device without payload", Document{Version: Version, Kind: KindDeviceInfo}, false},
		{"control without payload", Document{Version: Version, Kind: KindControlResult}, false},
		{"empty measurements ok", Document{Version: Version, Kind: KindMeasurements}, true},
		{"empty entity set ok", Document{Version: Version, Kind: KindEntitySet}, true},
	}
	for _, tc := range cases {
		err := tc.doc.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDeviceInfoAndControlDocs(t *testing.T) {
	d := DeviceInfo{
		URI: "urn:d/device:x", Protocol: "enocean", Model: "STM 330",
		Senses: []Quantity{Temperature}, BatteryPC: 88,
	}
	b, err := NewDeviceInfoDoc(d).Encode(JSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b, JSON)
	if err != nil {
		t.Fatal(err)
	}
	if got.Device.Model != "STM 330" || got.Device.Senses[0] != Temperature {
		t.Errorf("device round trip: %+v", got.Device)
	}

	c := ControlResult{Device: "urn:d/device:sw", Quantity: SwitchState, Value: 1, Applied: true, At: time.Now().UTC()}
	b, err = NewControlResultDoc(c).Encode(XML)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(b, XML)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Control.Applied || got.Control.Device != c.Device {
		t.Errorf("control round trip: %+v", got.Control)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("{"), JSON); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Decode([]byte("<document"), XML); err == nil {
		t.Error("truncated XML accepted")
	}
}

func TestSniff(t *testing.T) {
	if got := Sniff([]byte("  \n\t<document/>")); got != XML {
		t.Errorf("Sniff XML = %q", got)
	}
	if got := Sniff([]byte(" {\"version\":\"1.0\"}")); got != JSON {
		t.Errorf("Sniff JSON = %q", got)
	}
	if got := Sniff(nil); got != JSON {
		t.Errorf("Sniff(nil) = %q, want json default", got)
	}
}

func TestParseEncodingAndContentType(t *testing.T) {
	if ParseEncoding("application/xml") != XML || ParseEncoding("text/xml") != XML || ParseEncoding("xml") != XML {
		t.Error("ParseEncoding xml variants")
	}
	if ParseEncoding("application/json") != JSON || ParseEncoding("") != JSON || ParseEncoding("weird") != JSON {
		t.Error("ParseEncoding json default")
	}
	if !strings.Contains(JSON.ContentType(), "json") || !strings.Contains(XML.ContentType(), "xml") {
		t.Error("ContentType mismatch")
	}
}

// Property: JSON round trip preserves arbitrary measurement values exactly
// (encoding/json is lossless for float64).
func TestMeasurementJSONRoundTripProperty(t *testing.T) {
	f := func(value float64, devSuffix uint16) bool {
		if math.IsNaN(value) || math.IsInf(value, 0) {
			return true // JSON cannot carry non-finite floats; proxies never emit them
		}
		m := sampleMeasurement()
		m.Value = value
		m.Device = "urn:d/device:" + string(rune('a'+devSuffix%26))
		b, err := NewMeasurementDoc(m).Encode(JSON)
		if err != nil {
			return false
		}
		got, err := Decode(b, JSON)
		if err != nil {
			return false
		}
		return got.Measurement.Value == value && got.Measurement.Device == m.Device
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
