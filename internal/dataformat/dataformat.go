// Package dataformat defines the open common data format that every proxy
// in the district infrastructure translates its source data into.
//
// The paper (§II) requires that each proxy "offers a Web Service interface
// which allows data retrieval and translation from its database to an open
// standard, such as JSON or XML". This package is that standard: a small,
// versioned vocabulary of documents (measurements, entity models, device
// descriptions) with JSON and XML codecs and unit-aware values, so an
// end-user application can integrate data while "disregarding their
// origin".
package dataformat

import (
	"errors"
	"fmt"
	"time"
)

// Version is the common-format schema version stamped on every document.
const Version = "1.0"

// Kind discriminates the payload carried by a Document envelope.
type Kind string

// Document kinds understood by the infrastructure.
const (
	KindMeasurement   Kind = "measurement"
	KindMeasurements  Kind = "measurements"
	KindEntity        Kind = "entity"
	KindEntitySet     Kind = "entity-set"
	KindDeviceInfo    Kind = "device-info"
	KindControlResult Kind = "control-result"
)

// Quantity is the physical quantity a measurement refers to.
type Quantity string

// Quantities used across the district. The set mirrors what the DIMMER
// deployments sense: environmental comfort, electric power and energy,
// thermal energy, and binary device states.
const (
	Temperature  Quantity = "temperature"
	Humidity     Quantity = "humidity"
	Illuminance  Quantity = "illuminance"
	Occupancy    Quantity = "occupancy"
	PowerActive  Quantity = "power.active"
	EnergyActive Quantity = "energy.active"
	FlowRate     Quantity = "flow.rate"
	Pressure     Quantity = "pressure"
	HeatPower    Quantity = "power.thermal"
	HeatEnergy   Quantity = "energy.thermal"
	SwitchState  Quantity = "state.switch"
	ContactState Quantity = "state.contact"
	Voltage      Quantity = "voltage"
	Current      Quantity = "current"
	Battery      Quantity = "battery"
	CO2          Quantity = "co2"
)

// Unit identifies the unit of measure of a value.
type Unit string

// Units of the quantities above.
const (
	Celsius       Unit = "degC"
	Fahrenheit    Unit = "degF"
	Kelvin        Unit = "K"
	Percent       Unit = "percent"
	Lux           Unit = "lx"
	Watt          Unit = "W"
	Kilowatt      Unit = "kW"
	WattHour      Unit = "Wh"
	KilowattHour  Unit = "kWh"
	Joule         Unit = "J"
	LitrePerSec   Unit = "L/s"
	CubicMPerHour Unit = "m3/h"
	Pascal        Unit = "Pa"
	Bar           Unit = "bar"
	Volt          Unit = "V"
	Ampere        Unit = "A"
	PPM           Unit = "ppm"
	Bool          Unit = "bool"
	Unitless      Unit = ""
)

// Errors reported by validation and conversion.
var (
	ErrNoConversion = errors.New("dataformat: no unit conversion defined")
	ErrInvalid      = errors.New("dataformat: invalid document")
)

// conversion holds a linear unit conversion y = Scale*x + Offset.
type conversion struct {
	scale, offset float64
}

// conversions maps (from, to) unit pairs to linear transforms. Only
// same-dimension pairs appear; asking for anything else is ErrNoConversion.
var conversions = map[[2]Unit]conversion{
	{Celsius, Kelvin}:            {1, 273.15},
	{Kelvin, Celsius}:            {1, -273.15},
	{Celsius, Fahrenheit}:        {9.0 / 5.0, 32},
	{Fahrenheit, Celsius}:        {5.0 / 9.0, -32 * 5.0 / 9.0},
	{Kelvin, Fahrenheit}:         {9.0 / 5.0, 32 - 273.15*9.0/5.0},
	{Fahrenheit, Kelvin}:         {5.0 / 9.0, 273.15 - 32*5.0/9.0},
	{Kilowatt, Watt}:             {1000, 0},
	{Watt, Kilowatt}:             {0.001, 0},
	{KilowattHour, WattHour}:     {1000, 0},
	{WattHour, KilowattHour}:     {0.001, 0},
	{WattHour, Joule}:            {3600, 0},
	{Joule, WattHour}:            {1.0 / 3600, 0},
	{KilowattHour, Joule}:        {3.6e6, 0},
	{Joule, KilowattHour}:        {1.0 / 3.6e6, 0},
	{Bar, Pascal}:                {1e5, 0},
	{Pascal, Bar}:                {1e-5, 0},
	{CubicMPerHour, LitrePerSec}: {1000.0 / 3600, 0},
	{LitrePerSec, CubicMPerHour}: {3600.0 / 1000, 0},
}

// Convert converts value from one unit to another. Converting a unit to
// itself is the identity. Pairs without a defined conversion return
// ErrNoConversion.
func Convert(value float64, from, to Unit) (float64, error) {
	if from == to {
		return value, nil
	}
	c, ok := conversions[[2]Unit{from, to}]
	if !ok {
		return 0, fmt.Errorf("%w: %q -> %q", ErrNoConversion, from, to)
	}
	return value*c.scale + c.offset, nil
}

// CanonicalUnit returns the unit measurements of a quantity are normalized
// to by the integration engine, and whether the quantity is known.
func CanonicalUnit(q Quantity) (Unit, bool) {
	u, ok := canonicalUnits[q]
	return u, ok
}

var canonicalUnits = map[Quantity]Unit{
	Temperature:  Celsius,
	Humidity:     Percent,
	Illuminance:  Lux,
	Occupancy:    Bool,
	PowerActive:  Watt,
	EnergyActive: WattHour,
	FlowRate:     LitrePerSec,
	Pressure:     Pascal,
	HeatPower:    Watt,
	HeatEnergy:   WattHour,
	SwitchState:  Bool,
	ContactState: Bool,
	Voltage:      Volt,
	Current:      Ampere,
	Battery:      Percent,
	CO2:          PPM,
}

// Location is a WGS-84 georeference, optionally with altitude in metres.
type Location struct {
	Latitude  float64 `json:"lat" xml:"lat,attr"`
	Longitude float64 `json:"lon" xml:"lon,attr"`
	Altitude  float64 `json:"alt,omitempty" xml:"alt,attr,omitempty"`
}

// Measurement is a single sensor observation in the common format.
type Measurement struct {
	// Source is the URI of the proxy that produced the document.
	Source string `json:"source" xml:"source,attr"`
	// Device is the infrastructure URI of the originating device
	// (for example "urn:district:turin/building:b01/device:t-12").
	Device string `json:"device" xml:"device,attr"`
	// Protocol names the native technology the sample was read with
	// ("ieee802.15.4", "zigbee", "enocean", "opc-ua", ...).
	Protocol string `json:"protocol,omitempty" xml:"protocol,attr,omitempty"`
	// Quantity and Unit qualify Value.
	Quantity Quantity `json:"quantity" xml:"quantity,attr"`
	Unit     Unit     `json:"unit" xml:"unit,attr"`
	Value    float64  `json:"value" xml:"value"`
	// Timestamp is when the sample was taken, UTC.
	Timestamp time.Time `json:"timestamp" xml:"timestamp"`
	// Location georeferences the sample when known.
	Location *Location `json:"location,omitempty" xml:"location,omitempty"`
	// Tags carries source-specific annotations that survive translation.
	Tags map[string]string `json:"tags,omitempty" xml:"-"`
}

// Validate reports whether the measurement is well formed.
func (m *Measurement) Validate() error {
	switch {
	case m.Device == "":
		return fmt.Errorf("%w: measurement without device URI", ErrInvalid)
	case m.Quantity == "":
		return fmt.Errorf("%w: measurement without quantity", ErrInvalid)
	case m.Timestamp.IsZero():
		return fmt.Errorf("%w: measurement without timestamp", ErrInvalid)
	}
	return nil
}

// Normalize converts the measurement value to the canonical unit of its
// quantity, in place. Quantities with no canonical unit are left untouched.
func (m *Measurement) Normalize() error {
	canon, ok := CanonicalUnit(m.Quantity)
	if !ok || m.Unit == canon {
		return nil
	}
	v, err := Convert(m.Value, m.Unit, canon)
	if err != nil {
		return err
	}
	m.Value = v
	m.Unit = canon
	return nil
}

// EntityKind classifies entities described by an Entity document.
type EntityKind string

// Entity kinds in the district ontology vocabulary.
const (
	EntityDistrict EntityKind = "district"
	EntityBuilding EntityKind = "building"
	EntityNetwork  EntityKind = "network"
	EntityDevice   EntityKind = "device"
	EntitySpace    EntityKind = "space"
	EntityElement  EntityKind = "element"
	EntityNode     EntityKind = "node"
	EntityEdge     EntityKind = "edge"
)

// Property is one named, typed property of an entity. Values are kept as
// strings in transit; Type records the logical type for consumers.
type Property struct {
	Name  string `json:"name" xml:"name,attr"`
	Value string `json:"value" xml:"value,attr"`
	Type  string `json:"type,omitempty" xml:"type,attr,omitempty"`
}

// Entity is the common-format description of a district entity: a
// building as exported from a BIM, a network node from a SIM, a
// georeferenced footprint from a GIS, or a device.
type Entity struct {
	URI        string     `json:"uri" xml:"uri,attr"`
	Kind       EntityKind `json:"kind" xml:"kind,attr"`
	Name       string     `json:"name,omitempty" xml:"name,attr,omitempty"`
	Source     string     `json:"source,omitempty" xml:"source,attr,omitempty"`
	Location   *Location  `json:"location,omitempty" xml:"location,omitempty"`
	Properties []Property `json:"properties,omitempty" xml:"property,omitempty"`
	Children   []Entity   `json:"children,omitempty" xml:"child,omitempty"`
}

// Validate reports whether the entity is well formed.
func (e *Entity) Validate() error {
	if e.URI == "" {
		return fmt.Errorf("%w: entity without URI", ErrInvalid)
	}
	if e.Kind == "" {
		return fmt.Errorf("%w: entity %q without kind", ErrInvalid, e.URI)
	}
	for i := range e.Children {
		if err := e.Children[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Prop returns the named property value and whether it exists.
func (e *Entity) Prop(name string) (string, bool) {
	for _, p := range e.Properties {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// SetProp sets a property, replacing any previous value with the name.
func (e *Entity) SetProp(name, value, typ string) {
	for i := range e.Properties {
		if e.Properties[i].Name == name {
			e.Properties[i].Value = value
			e.Properties[i].Type = typ
			return
		}
	}
	e.Properties = append(e.Properties, Property{Name: name, Value: value, Type: typ})
}

// DeviceInfo describes a device behind a device-proxy: its identity, its
// native protocol, and the quantities it can report or accept.
type DeviceInfo struct {
	URI       string     `json:"uri" xml:"uri,attr"`
	Name      string     `json:"name,omitempty" xml:"name,attr,omitempty"`
	Protocol  string     `json:"protocol" xml:"protocol,attr"`
	Model     string     `json:"model,omitempty" xml:"model,attr,omitempty"`
	Senses    []Quantity `json:"senses,omitempty" xml:"senses>quantity,omitempty"`
	Actuates  []Quantity `json:"actuates,omitempty" xml:"actuates>quantity,omitempty"`
	Location  *Location  `json:"location,omitempty" xml:"location,omitempty"`
	ProxyURI  string     `json:"proxyUri,omitempty" xml:"proxyUri,attr,omitempty"`
	BatteryPC float64    `json:"batteryPercent,omitempty" xml:"battery,attr,omitempty"`
}

// ControlResult reports the outcome of an actuator command issued through
// a device-proxy web service.
type ControlResult struct {
	Device   string    `json:"device" xml:"device,attr"`
	Quantity Quantity  `json:"quantity" xml:"quantity,attr"`
	Value    float64   `json:"value" xml:"value"`
	Applied  bool      `json:"applied" xml:"applied"`
	Error    string    `json:"error,omitempty" xml:"error,omitempty"`
	At       time.Time `json:"at" xml:"at"`
}
