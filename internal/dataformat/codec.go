package dataformat

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
)

// Encoding selects one of the open-standard wire encodings of the common
// format. The paper names JSON and XML; both are first-class here and a
// document round-trips losslessly through either.
type Encoding string

// Supported encodings.
const (
	JSON Encoding = "json"
	XML  Encoding = "xml"
)

// ContentType returns the MIME type proxies use for the encoding.
func (e Encoding) ContentType() string {
	if e == XML {
		return "application/xml"
	}
	return "application/json"
}

// ParseEncoding maps a MIME type or short name to an Encoding. Unknown
// values default to JSON, the infrastructure's primary encoding.
func ParseEncoding(s string) Encoding {
	switch s {
	case "xml", "application/xml", "text/xml":
		return XML
	default:
		return JSON
	}
}

// Document is the envelope every proxy response travels in. Exactly one
// payload field is set, matching Kind.
type Document struct {
	XMLName      xml.Name       `json:"-" xml:"document"`
	Version      string         `json:"version" xml:"version,attr"`
	Kind         Kind           `json:"kind" xml:"kind,attr"`
	Measurement  *Measurement   `json:"measurement,omitempty" xml:"measurement,omitempty"`
	Measurements []Measurement  `json:"measurements,omitempty" xml:"measurements>measurement,omitempty"`
	Entity       *Entity        `json:"entity,omitempty" xml:"entity,omitempty"`
	Entities     []Entity       `json:"entities,omitempty" xml:"entities>entity,omitempty"`
	Device       *DeviceInfo    `json:"device,omitempty" xml:"device,omitempty"`
	Control      *ControlResult `json:"control,omitempty" xml:"control,omitempty"`
}

// NewMeasurementDoc wraps a single measurement in an envelope.
func NewMeasurementDoc(m Measurement) *Document {
	return &Document{Version: Version, Kind: KindMeasurement, Measurement: &m}
}

// NewMeasurementsDoc wraps a batch of measurements in an envelope.
func NewMeasurementsDoc(ms []Measurement) *Document {
	return &Document{Version: Version, Kind: KindMeasurements, Measurements: ms}
}

// NewEntityDoc wraps a single entity in an envelope.
func NewEntityDoc(e Entity) *Document {
	return &Document{Version: Version, Kind: KindEntity, Entity: &e}
}

// NewEntitySetDoc wraps a set of entities in an envelope.
func NewEntitySetDoc(es []Entity) *Document {
	return &Document{Version: Version, Kind: KindEntitySet, Entities: es}
}

// NewDeviceInfoDoc wraps a device description in an envelope.
func NewDeviceInfoDoc(d DeviceInfo) *Document {
	return &Document{Version: Version, Kind: KindDeviceInfo, Device: &d}
}

// NewControlResultDoc wraps an actuation outcome in an envelope.
func NewControlResultDoc(c ControlResult) *Document {
	return &Document{Version: Version, Kind: KindControlResult, Control: &c}
}

// Validate checks the envelope invariants: version present, kind known,
// and the payload matching the kind present and itself valid.
func (d *Document) Validate() error {
	if d.Version == "" {
		return fmt.Errorf("%w: missing version", ErrInvalid)
	}
	switch d.Kind {
	case KindMeasurement:
		if d.Measurement == nil {
			return fmt.Errorf("%w: kind %q without payload", ErrInvalid, d.Kind)
		}
		return d.Measurement.Validate()
	case KindMeasurements:
		for i := range d.Measurements {
			if err := d.Measurements[i].Validate(); err != nil {
				return fmt.Errorf("measurement %d: %w", i, err)
			}
		}
		return nil
	case KindEntity:
		if d.Entity == nil {
			return fmt.Errorf("%w: kind %q without payload", ErrInvalid, d.Kind)
		}
		return d.Entity.Validate()
	case KindEntitySet:
		for i := range d.Entities {
			if err := d.Entities[i].Validate(); err != nil {
				return fmt.Errorf("entity %d: %w", i, err)
			}
		}
		return nil
	case KindDeviceInfo:
		if d.Device == nil {
			return fmt.Errorf("%w: kind %q without payload", ErrInvalid, d.Kind)
		}
		return nil
	case KindControlResult:
		if d.Control == nil {
			return fmt.Errorf("%w: kind %q without payload", ErrInvalid, d.Kind)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalid, d.Kind)
	}
}

// Encode serializes the document in the requested encoding.
func (d *Document) Encode(enc Encoding) ([]byte, error) {
	switch enc {
	case XML:
		return xml.Marshal(d)
	default:
		return json.Marshal(d)
	}
}

// EncodeTo writes the encoded document to w.
func (d *Document) EncodeTo(w io.Writer, enc Encoding) error {
	b, err := d.Encode(enc)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Decode parses a document from data in the given encoding and validates
// the envelope.
func Decode(data []byte, enc Encoding) (*Document, error) {
	var d Document
	var err error
	switch enc {
	case XML:
		err = xml.Unmarshal(data, &d)
	default:
		err = json.Unmarshal(data, &d)
	}
	if err != nil {
		return nil, fmt.Errorf("dataformat: decode %s: %w", enc, err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// DecodeFrom reads all of r and decodes a document from it.
func DecodeFrom(r io.Reader, enc Encoding) (*Document, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return Decode(buf.Bytes(), enc)
}

// Sniff guesses the encoding of raw document bytes from the first
// non-space byte: '<' means XML, anything else JSON.
func Sniff(data []byte) Encoding {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '<':
			return XML
		default:
			return JSON
		}
	}
	return JSON
}
