// Package qcache is the generation-keyed query/aggregate result cache:
// a bounded, sharded LRU over immutable encoded response bytes.
//
// The cache stores fully-encoded responses (a JSON page, an aggregate
// document, a catalog listing) under keys the caller builds from the
// request's normalized parameters PLUS a snapshot of the storage
// generations the answer was computed from. Storage bumps a shard's
// generation before acknowledging any mutation (append wave, compaction
// publish, retention pass, reset, restore), so a key built after a
// write can never match an entry computed before it: invalidation is
// implicit in the keying and read-your-writes holds exactly. Entries
// made stale by a generation bump are never served again and age out of
// the LRU under byte pressure.
//
// The cache itself is deliberately dumb: it knows nothing about
// selectors, epochs, or shards — only keys, bytes, and a budget. All
// consistency reasoning lives in how callers build keys.
package qcache

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// numShards is the lock-striping factor. Requests hash across the
// shards, so the per-shard mutex is uncontended at typical request
// parallelism.
const numShards = 16

// entryOverhead approximates the bookkeeping bytes an entry costs
// beyond its key and value, charged against the budget so many small
// entries cannot blow past it.
const entryOverhead = 96

// Cache is a bounded, sharded LRU keyed by caller-built strings. A nil
// *Cache is valid and permanently empty: Get always misses, Put is a
// no-op — the cache-disabled configuration needs no branches at call
// sites beyond the ones already there.
type Cache struct {
	shards [numShards]shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	bytes     atomic.Int64
	entries   atomic.Int64
}

// shard is one lock-striped LRU segment with its own byte budget.
type shard struct {
	mu  sync.Mutex
	max int64
	cur int64
	m   map[string]*entry
	// Intrusive LRU list: head is most recent, tail the eviction
	// candidate. Zero entries mean both are nil.
	head, tail *entry
}

// entry is one cached response. val is immutable once stored.
type entry struct {
	key        string
	val        []byte
	prev, next *entry
}

// New creates a cache bounded to roughly maxBytes of resident keys and
// values. A non-positive budget returns nil — the valid, always-miss
// cache — so a size flag wired straight through needs no special case.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{}
	per := maxBytes / numShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].max = per
		c.shards[i].m = make(map[string]*entry)
	}
	return c
}

// Get returns the bytes cached under key. The returned slice is shared
// and read-only: write it to the response, never into it.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	sh.moveToFront(e)
	val := e.val
	sh.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, copying it — callers hand in pooled encode
// buffers and reuse them immediately. Values larger than a shard's
// whole budget are rejected rather than flushing everything else.
func (c *Cache) Put(key string, val []byte) {
	if c == nil {
		return
	}
	sh := &c.shards[shardOf(key)]
	cost := int64(len(key) + len(val) + entryOverhead)
	if cost > sh.max {
		return
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	sh.mu.Lock()
	if old, ok := sh.m[key]; ok {
		// Same key refilled (a racing miss, or a re-encode after the
		// value aged out of the map elsewhere): replace in place.
		delta := int64(len(cp)) - int64(len(old.val))
		old.val = cp
		sh.cur += delta
		c.bytes.Add(delta)
		sh.moveToFront(old)
	} else {
		e := &entry{key: key, val: cp}
		sh.m[key] = e
		sh.pushFront(e)
		sh.cur += cost
		c.bytes.Add(cost)
		c.entries.Add(1)
	}
	for sh.cur > sh.max && sh.tail != nil {
		ev := sh.tail
		sh.unlink(ev)
		delete(sh.m, ev.key)
		freed := int64(len(ev.key) + len(ev.val) + entryOverhead)
		sh.cur -= freed
		c.bytes.Add(-freed)
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Bytes     int64
	Entries   int64
}

// Stats snapshots the counters (all-zero on a nil cache).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
		Entries:   c.entries.Load(),
	}
}

// pushFront links a new entry at the MRU position.
func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes an entry from the list.
func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks an entry most-recently-used.
func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// shardOf stripes a key over the segments (FNV-1a).
func shardOf(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % numShards)
}

// Key builds a cache key from heterogeneous parts without intermediate
// allocations: parts append to one growing buffer, separated by an
// unambiguous delimiter so "ab"+"c" and "a"+"bc" never collide. The
// zero Key is ready to use; Reset recycles the buffer across requests
// (callers pool the builder, not the key string).
type Key struct {
	b []byte
}

// sep separates key parts. It is a byte that cannot appear in device
// URIs, quantities, or the numeric parts (0x1f, the ASCII unit
// separator) — and even if a caller smuggles one in, the part lengths
// still disambiguate common cases well enough for a cache (a false
// collision only costs a wrong hit if every generation also matches,
// and keys embed the full normalized request, so equal keys mean equal
// requests in practice).
const sep = 0x1f

// Reset empties the key for reuse, keeping the buffer.
func (k *Key) Reset() { k.b = k.b[:0] }

// Str appends a string part.
func (k *Key) Str(s string) *Key {
	k.b = append(k.b, s...)
	k.b = append(k.b, sep)
	return k
}

// Int appends a signed integer part.
func (k *Key) Int(v int64) *Key {
	k.b = appendInt(k.b, v)
	k.b = append(k.b, sep)
	return k
}

// Uint appends an unsigned integer part.
func (k *Key) Uint(v uint64) *Key {
	k.b = appendUint(k.b, v)
	k.b = append(k.b, sep)
	return k
}

// Bytes appends a raw byte-slice part (a request body, a pre-joined
// sub-key) without converting it to a string first.
func (k *Key) Bytes(b []byte) *Key {
	k.b = append(k.b, b...)
	k.b = append(k.b, sep)
	return k
}

// Gens appends a generation snapshot.
func (k *Key) Gens(gens []uint64) *Key {
	for _, g := range gens {
		k.b = appendUint(k.b, g)
		k.b = append(k.b, ',')
	}
	k.b = append(k.b, sep)
	return k
}

// String materializes the key. The one unavoidable allocation of a
// cache probe: map lookup needs a string.
func (k *Key) String() string { return string(k.b) }

func appendInt(b []byte, v int64) []byte   { return strconv.AppendInt(b, v, 10) }
func appendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }
