package qcache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilCacheIsValid(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.Put("k", []byte("v")) // must not panic
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
	if New(0) != nil || New(-1) != nil {
		t.Fatal("non-positive budget should return the nil cache")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("hello"))
	got, ok := c.Get("a")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutCopiesValue(t *testing.T) {
	c := New(1 << 20)
	buf := []byte("original")
	c.Put("k", buf)
	copy(buf, "mutated!")
	got, _ := c.Get("k")
	if string(got) != "original" {
		t.Fatalf("cached value aliased the caller's buffer: %q", got)
	}
}

func TestReplaceSameKey(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", []byte("one"))
	c.Put("k", []byte("twotwo"))
	got, _ := c.Get("k")
	if string(got) != "twotwo" {
		t.Fatalf("replace lost: %q", got)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("replace minted an entry: %+v", st)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	// Tiny budget: ~4 entries per shard before eviction kicks in.
	c := New(numShards * 4 * (entryOverhead + 64))
	val := []byte(strings.Repeat("x", 48))
	for i := 0; i < 10*numShards; i++ {
		c.Put(fmt.Sprintf("key-%04d", i), val)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	var sum int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		if c.shards[i].cur > c.shards[i].max {
			t.Fatalf("shard %d over budget: %d > %d", i, c.shards[i].cur, c.shards[i].max)
		}
		sum += c.shards[i].cur
		c.shards[i].mu.Unlock()
	}
	if sum != st.Bytes {
		t.Fatalf("bytes accounting drifted: shards=%d stats=%d", sum, st.Bytes)
	}
}

func TestLRUOrder(t *testing.T) {
	// One shard's worth of keys that all hash to... easier: use a cache
	// where every entry goes somewhere, touch one key, then flood; the
	// touched key should be likelier to survive than the untouched ones
	// is probabilistic — instead pin determinism by exercising a single
	// shard directly.
	c := New(numShards * 3 * (entryOverhead + 16))
	var keys []string
	for i := 0; keys == nil || len(keys) < 4; i++ {
		k := fmt.Sprintf("k%05d", i)
		if shardOf(k) == 0 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:3] {
		c.Put(k, []byte("v"))
	}
	// Refresh keys[0]; adding keys[3] must evict keys[1] (LRU), not it.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("warm key missing")
	}
	c.Put(keys[3], []byte("v"))
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently-used key was evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least-recently-used key survived eviction")
	}
}

func TestOversizeValueRejected(t *testing.T) {
	c := New(numShards * 128)
	c.Put("big", make([]byte, 4096))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversize value was cached")
	}
	if st := c.Stats(); st.Bytes != 0 {
		t.Fatalf("rejected value left bytes behind: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 18)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k-%d", i%97)
				if v, ok := c.Get(k); ok && len(v) == 0 {
					t.Error("empty cached value")
					return
				}
				c.Put(k, []byte(k))
			}
		}(w)
	}
	wg.Wait()
}

func TestKeyBuilder(t *testing.T) {
	var k Key
	k.Str("dev/1").Str("temp").Int(-5).Uint(42).Gens([]uint64{1, 2, 3})
	a := k.String()
	k.Reset()
	k.Str("dev/1").Str("temp").Int(-5).Uint(42).Gens([]uint64{1, 2, 3})
	if b := k.String(); a != b {
		t.Fatalf("same parts, different keys: %q vs %q", a, b)
	}
	k.Reset()
	k.Str("dev/1").Str("temp").Int(-5).Uint(42).Gens([]uint64{1, 2, 4})
	if b := k.String(); a == b {
		t.Fatal("generation change did not change the key")
	}
	// Adjacent parts must not concatenate ambiguously.
	var k1, k2 Key
	k1.Str("ab").Str("c")
	k2.Str("a").Str("bc")
	if k1.String() == k2.String() {
		t.Fatal("part boundaries collide")
	}
}
