package bim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// Decoder robustness: arbitrary input must yield an error or a valid
// model, never a panic. These mirror what a Database-proxy faces when a
// vendor export is corrupted in transit.

func TestDecodeVendorANeverPanics(t *testing.T) {
	f := func(input string) bool {
		b, err := DecodeVendorA(strings.NewReader(input))
		if err != nil {
			return true
		}
		return b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeVendorAStructuredGarbage(t *testing.T) {
	// Inputs that look like the format but violate it field-wise.
	f := func(a, b, c string) bool {
		clean := func(s string) string {
			return strings.Map(func(r rune) rune {
				if r == '|' || r == '\n' {
					return '_'
				}
				return r
			}, s)
		}
		input := "BLDG|" + clean(a) + "|n|a|1|2|1990\nSTRY|" + clean(b) + "|x|0|3\nSPCE|" + clean(b) + "|" + clean(c) + "|r|office|10\n"
		model, err := DecodeVendorA(strings.NewReader(input))
		if err != nil {
			return true
		}
		return model.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeVendorBNeverPanics(t *testing.T) {
	f := func(input []byte) bool {
		b, err := DecodeVendorB(bytes.NewReader(input))
		if err != nil {
			return true
		}
		return b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
