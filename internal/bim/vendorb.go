package bim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// VendorB is a nested JSON BIM export with its own vocabulary (German
// field names, centimetre/square-centimetre units, usage codes) — the
// shape of an architectural tool's project dump. Translating it is
// deliberately non-trivial: units differ from the canonical model and
// nothing shares a field name with VendorA.

// ErrVendorB reports a malformed VendorB export.
var ErrVendorB = errors.New("bim: malformed VendorB export")

// vendorB wire types. Lengths are centimetres, areas square centimetres.
type vbProject struct {
	Gebaeude vbBuilding `json:"gebaeude"`
	Schema   string     `json:"schema"`
}

type vbBuilding struct {
	Kennung   string     `json:"kennung"`
	Titel     string     `json:"titel"`
	Anschrift string     `json:"anschrift"`
	Breite    float64    `json:"breite"` // latitude
	Laenge    float64    `json:"laenge"` // longitude
	Baujahr   int        `json:"baujahr"`
	Etagen    []vbStorey `json:"etagen"`
}

type vbStorey struct {
	Kennung string    `json:"kennung"`
	Titel   string    `json:"titel"`
	HoeheCm float64   `json:"hoeheCm"`
	KoteCm  float64   `json:"koteCm"`
	Raeume  []vbSpace `json:"raeume"`
}

type vbSpace struct {
	Kennung     string      `json:"kennung"`
	Titel       string      `json:"titel"`
	Nutzung     string      `json:"nutzung"`
	FlaecheCm2  float64     `json:"flaecheCm2"`
	Bauteile    []vbElement `json:"bauteile"`
	Messstellen []string    `json:"messstellen"` // device URIs
}

type vbElement struct {
	Kennung    string  `json:"kennung"`
	Art        string  `json:"art"` // WAND | FENSTER | TUER | DACH | BODEN
	FlaecheCm2 float64 `json:"flaecheCm2"`
	UWert      float64 `json:"uWert"`
}

// vbSchema is the schema tag VendorB exports carry.
const vbSchema = "vb-bim-2.3"

// elementArt maps canonical element kinds to VendorB codes and back.
var artToKind = map[string]ElementKind{
	"WAND":    ElementWall,
	"FENSTER": ElementWindow,
	"TUER":    ElementDoor,
	"DACH":    ElementRoof,
	"BODEN":   ElementFloor,
}

var kindToArt = map[ElementKind]string{
	ElementWall:   "WAND",
	ElementWindow: "FENSTER",
	ElementDoor:   "TUER",
	ElementRoof:   "DACH",
	ElementFloor:  "BODEN",
}

// usage codes used by VendorB exports.
var vbUsage = map[string]string{
	"office":      "BUERO",
	"classroom":   "LEHRRAUM",
	"corridor":    "FLUR",
	"plant":       "TECHNIK",
	"residential": "WOHNEN",
	"other":       "SONSTIGE",
}

var vbUsageBack = map[string]string{
	"BUERO":    "office",
	"LEHRRAUM": "classroom",
	"FLUR":     "corridor",
	"TECHNIK":  "plant",
	"WOHNEN":   "residential",
	"SONSTIGE": "other",
}

// EncodeVendorB writes the building in the VendorB JSON format.
func EncodeVendorB(w io.Writer, b *Building) error {
	vb := vbProject{Schema: vbSchema, Gebaeude: vbBuilding{
		Kennung: b.ID, Titel: b.Name, Anschrift: b.Address,
		Breite: b.Lat, Laenge: b.Lon, Baujahr: b.YearBuilt,
	}}
	for _, st := range b.Storeys {
		vst := vbStorey{Kennung: st.ID, Titel: st.Name,
			HoeheCm: st.Height * 100, KoteCm: st.Elevation * 100}
		for _, sp := range st.Spaces {
			usage, ok := vbUsage[sp.Usage]
			if !ok {
				usage = "SONSTIGE"
			}
			vsp := vbSpace{Kennung: sp.ID, Titel: sp.Name, Nutzung: usage,
				FlaecheCm2: sp.Area * 1e4, Messstellen: sp.Devices}
			for _, el := range sp.Elements {
				art, ok := kindToArt[el.Kind]
				if !ok {
					return fmt.Errorf("bim: element kind %q has no VendorB code", el.Kind)
				}
				vsp.Bauteile = append(vsp.Bauteile, vbElement{
					Kennung: el.ID, Art: art, FlaecheCm2: el.Area * 1e4, UWert: el.UValue})
			}
			vst.Raeume = append(vst.Raeume, vsp)
		}
		vb.Gebaeude.Etagen = append(vb.Gebaeude.Etagen, vst)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(vb)
}

// DecodeVendorB parses a VendorB export into a Building.
func DecodeVendorB(r io.Reader) (*Building, error) {
	var vb vbProject
	if err := json.NewDecoder(r).Decode(&vb); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrVendorB, err)
	}
	if vb.Schema != vbSchema {
		return nil, fmt.Errorf("%w: schema %q (want %q)", ErrVendorB, vb.Schema, vbSchema)
	}
	g := vb.Gebaeude
	b := &Building{ID: g.Kennung, Name: g.Titel, Address: g.Anschrift,
		Lat: g.Breite, Lon: g.Laenge, YearBuilt: g.Baujahr}
	for _, vst := range g.Etagen {
		st := Storey{ID: vst.Kennung, Name: vst.Titel,
			Height: vst.HoeheCm / 100, Elevation: vst.KoteCm / 100}
		for _, vsp := range vst.Raeume {
			usage, ok := vbUsageBack[vsp.Nutzung]
			if !ok {
				usage = "other"
			}
			sp := Space{ID: vsp.Kennung, Name: vsp.Titel, Usage: usage,
				Area: vsp.FlaecheCm2 / 1e4, Devices: vsp.Messstellen}
			for _, vel := range vsp.Bauteile {
				kind, ok := artToKind[vel.Art]
				if !ok {
					return nil, fmt.Errorf("%w: unknown element art %q", ErrVendorB, vel.Art)
				}
				sp.Elements = append(sp.Elements, Element{
					ID: vel.Kennung, Kind: kind, Area: vel.FlaecheCm2 / 1e4, UValue: vel.UWert})
			}
			st.Spaces = append(st.Spaces, sp)
		}
		b.Storeys = append(b.Storeys, st)
	}
	return b, b.Validate()
}
