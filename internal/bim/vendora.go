package bim

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// VendorA is a flat, line-oriented BIM export: one record per line,
// pipe-separated, with a record-type tag in the first field — the shape
// of a facility-management CSV dump. It deliberately shares nothing
// with the VendorB encoding so the Database-proxy's translation layer is
// exercised for real.
//
//	BLDG|id|name|address|lat|lon|year
//	STRY|id|name|elevation|height
//	SPCE|storeyID|id|name|usage|area
//	ELEM|spaceID|id|kind|area|uvalue
//	DEVC|spaceID|uri

// ErrVendorA reports a malformed VendorA export.
var ErrVendorA = errors.New("bim: malformed VendorA export")

// EncodeVendorA writes the building in the VendorA flat format.
func EncodeVendorA(w io.Writer, b *Building) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "BLDG|%s|%s|%s|%g|%g|%d\n", b.ID, b.Name, b.Address, b.Lat, b.Lon, b.YearBuilt)
	for _, st := range b.Storeys {
		fmt.Fprintf(bw, "STRY|%s|%s|%g|%g\n", st.ID, st.Name, st.Elevation, st.Height)
		for _, sp := range st.Spaces {
			fmt.Fprintf(bw, "SPCE|%s|%s|%s|%s|%g\n", st.ID, sp.ID, sp.Name, sp.Usage, sp.Area)
			for _, el := range sp.Elements {
				fmt.Fprintf(bw, "ELEM|%s|%s|%s|%g|%g\n", sp.ID, el.ID, el.Kind, el.Area, el.UValue)
			}
			for _, d := range sp.Devices {
				fmt.Fprintf(bw, "DEVC|%s|%s\n", sp.ID, d)
			}
		}
	}
	return bw.Flush()
}

// DecodeVendorA parses a VendorA export into a Building.
func DecodeVendorA(r io.Reader) (*Building, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var b *Building
	storeyIdx := map[string]int{}
	spaceLoc := map[string][2]int{} // space ID -> (storey index, space index)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "|")
		bad := func(msg string) error {
			return fmt.Errorf("%w: line %d: %s", ErrVendorA, line, msg)
		}
		switch fields[0] {
		case "BLDG":
			if len(fields) != 7 {
				return nil, bad("BLDG needs 7 fields")
			}
			if b != nil {
				return nil, bad("second BLDG record")
			}
			lat, err1 := strconv.ParseFloat(fields[4], 64)
			lon, err2 := strconv.ParseFloat(fields[5], 64)
			year, err3 := strconv.Atoi(fields[6])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, bad("BLDG numeric fields")
			}
			b = &Building{ID: fields[1], Name: fields[2], Address: fields[3], Lat: lat, Lon: lon, YearBuilt: year}
		case "STRY":
			if b == nil {
				return nil, bad("STRY before BLDG")
			}
			if len(fields) != 5 {
				return nil, bad("STRY needs 5 fields")
			}
			elev, err1 := strconv.ParseFloat(fields[3], 64)
			height, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return nil, bad("STRY numeric fields")
			}
			storeyIdx[fields[1]] = len(b.Storeys)
			b.Storeys = append(b.Storeys, Storey{ID: fields[1], Name: fields[2], Elevation: elev, Height: height})
		case "SPCE":
			if b == nil {
				return nil, bad("SPCE before BLDG")
			}
			if len(fields) != 6 {
				return nil, bad("SPCE needs 6 fields")
			}
			si, ok := storeyIdx[fields[1]]
			if !ok {
				return nil, bad("SPCE references unknown storey " + fields[1])
			}
			area, err := strconv.ParseFloat(fields[5], 64)
			if err != nil {
				return nil, bad("SPCE area")
			}
			st := &b.Storeys[si]
			spaceLoc[fields[2]] = [2]int{si, len(st.Spaces)}
			st.Spaces = append(st.Spaces, Space{ID: fields[2], Name: fields[3], Usage: normalizeUsage(fields[4]), Area: area})
		case "ELEM":
			if len(fields) != 6 {
				return nil, bad("ELEM needs 6 fields")
			}
			loc, ok := spaceLoc[fields[1]]
			if !ok {
				return nil, bad("ELEM references unknown space " + fields[1])
			}
			area, err1 := strconv.ParseFloat(fields[4], 64)
			uv, err2 := strconv.ParseFloat(fields[5], 64)
			if err1 != nil || err2 != nil {
				return nil, bad("ELEM numeric fields")
			}
			sp := &b.Storeys[loc[0]].Spaces[loc[1]]
			sp.Elements = append(sp.Elements, Element{ID: fields[2], Kind: ElementKind(fields[3]), Area: area, UValue: uv})
		case "DEVC":
			if len(fields) != 3 {
				return nil, bad("DEVC needs 3 fields")
			}
			loc, ok := spaceLoc[fields[1]]
			if !ok {
				return nil, bad("DEVC references unknown space " + fields[1])
			}
			sp := &b.Storeys[loc[0]].Spaces[loc[1]]
			sp.Devices = append(sp.Devices, fields[2])
		default:
			return nil, bad("unknown record tag " + fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("%w: no BLDG record", ErrVendorA)
	}
	return b, b.Validate()
}
