package bim

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleBuilding() *Building {
	return &Building{
		ID: "b01", Name: "DAUIN", Address: "Corso Duca degli Abruzzi 24",
		Lat: 45.0628, Lon: 7.6624, YearBuilt: 1960,
		Storeys: []Storey{{
			ID: "b01-st0", Name: "Ground", Elevation: 0, Height: 3.5,
			Spaces: []Space{
				{
					ID: "b01-st0-sp0", Name: "Lab 1", Usage: "office", Area: 45,
					Devices: []string{"urn:district:turin/building:b01/device:t-1"},
					Elements: []Element{
						{ID: "e1", Kind: ElementWall, Area: 27, UValue: 0.9},
						{ID: "e2", Kind: ElementWindow, Area: 6, UValue: 2.2},
					},
				},
				{ID: "b01-st0-sp1", Name: "Corridor", Usage: "corridor", Area: 20},
			},
		}, {
			ID: "b01-st1", Name: "First", Elevation: 3.5, Height: 3.2,
			Spaces: []Space{{
				ID: "b01-st1-sp0", Name: "Office 12", Usage: "office", Area: 18,
				Devices: []string{
					"urn:district:turin/building:b01/device:t-2",
					"urn:district:turin/building:b01/device:h-1",
				},
				Elements: []Element{{ID: "e3", Kind: ElementRoof, Area: 18, UValue: 0.7}},
			}},
		}},
	}
}

func TestValidate(t *testing.T) {
	b := sampleBuilding()
	if err := b.Validate(); err != nil {
		t.Fatalf("valid building rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Building)
	}{
		{"no building ID", func(b *Building) { b.ID = "" }},
		{"no storey ID", func(b *Building) { b.Storeys[0].ID = "" }},
		{"duplicate storey ID", func(b *Building) { b.Storeys[1].ID = b.Storeys[0].ID }},
		{"negative height", func(b *Building) { b.Storeys[0].Height = -1 }},
		{"no space ID", func(b *Building) { b.Storeys[0].Spaces[0].ID = "" }},
		{"duplicate space ID", func(b *Building) { b.Storeys[1].Spaces[0].ID = "b01-st0-sp0" }},
		{"negative area", func(b *Building) { b.Storeys[0].Spaces[0].Area = -2 }},
		{"negative U-value", func(b *Building) { b.Storeys[0].Spaces[0].Elements[0].UValue = -0.1 }},
	}
	for _, tc := range cases {
		bad := sampleBuilding()
		tc.mutate(bad)
		if err := bad.Validate(); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", tc.name, err)
		}
	}
}

func TestDerivedMetrics(t *testing.T) {
	b := sampleBuilding()
	if got := b.FloorArea(); math.Abs(got-83) > 1e-9 {
		t.Errorf("FloorArea = %v, want 83", got)
	}
	wantVol := 45*3.5 + 20*3.5 + 18*3.2
	if got := b.HeatedVolume(); math.Abs(got-wantVol) > 1e-9 {
		t.Errorf("HeatedVolume = %v, want %v", got, wantVol)
	}
	wantUA := 27*0.9 + 6*2.2 + 18*0.7
	if got := b.EnvelopeUA(); math.Abs(got-wantUA) > 1e-9 {
		t.Errorf("EnvelopeUA = %v, want %v", got, wantUA)
	}
	if got := b.DeviceURIs(); len(got) != 3 {
		t.Errorf("DeviceURIs = %v", got)
	}
	if _, ok := b.SpaceByID("b01-st1-sp0"); !ok {
		t.Error("SpaceByID missed an existing space")
	}
	if _, ok := b.SpaceByID("nope"); ok {
		t.Error("SpaceByID found a ghost")
	}
	if s := b.Summary(); !strings.Contains(s, "2 storeys") || !strings.Contains(s, "3 devices") {
		t.Errorf("Summary = %q", s)
	}
}

func TestVendorARoundTrip(t *testing.T) {
	b := sampleBuilding()
	var buf bytes.Buffer
	if err := EncodeVendorA(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeVendorA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBuilding(t, b, got)
}

func TestVendorBRoundTrip(t *testing.T) {
	b := sampleBuilding()
	var buf bytes.Buffer
	if err := EncodeVendorB(&buf, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gebaeude") {
		t.Fatal("VendorB export does not use its own vocabulary")
	}
	got, err := DecodeVendorB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameBuilding(t, b, got)
}

// assertSameBuilding compares the fields the common format cares about.
func assertSameBuilding(t *testing.T, want, got *Building) {
	t.Helper()
	if got.ID != want.ID || got.Name != want.Name || got.YearBuilt != want.YearBuilt {
		t.Errorf("identity: %+v", got)
	}
	if len(got.Storeys) != len(want.Storeys) {
		t.Fatalf("storeys = %d, want %d", len(got.Storeys), len(want.Storeys))
	}
	if math.Abs(got.FloorArea()-want.FloorArea()) > 1e-6 {
		t.Errorf("FloorArea = %v, want %v", got.FloorArea(), want.FloorArea())
	}
	if math.Abs(got.EnvelopeUA()-want.EnvelopeUA()) > 1e-6 {
		t.Errorf("EnvelopeUA = %v, want %v", got.EnvelopeUA(), want.EnvelopeUA())
	}
	if math.Abs(got.HeatedVolume()-want.HeatedVolume()) > 1e-6 {
		t.Errorf("HeatedVolume = %v, want %v", got.HeatedVolume(), want.HeatedVolume())
	}
	wd, gd := want.DeviceURIs(), got.DeviceURIs()
	if len(wd) != len(gd) {
		t.Fatalf("devices = %d, want %d", len(gd), len(wd))
	}
	for i := range wd {
		if wd[i] != gd[i] {
			t.Errorf("device %d = %q, want %q", i, gd[i], wd[i])
		}
	}
	sp, ok := got.SpaceByID(want.Storeys[0].Spaces[0].ID)
	if !ok || sp.Usage != want.Storeys[0].Spaces[0].Usage {
		t.Errorf("space usage lost in translation: %+v", sp)
	}
}

func TestCrossVendorTranslation(t *testing.T) {
	// VendorA -> model -> VendorB -> model must preserve the content:
	// this is exactly what two Database-proxies over different exports
	// of the same building guarantee in the paper's design.
	b := Synthesize(SynthOptions{Seed: 42})
	var aBuf bytes.Buffer
	if err := EncodeVendorA(&aBuf, b); err != nil {
		t.Fatal(err)
	}
	fromA, err := DecodeVendorA(&aBuf)
	if err != nil {
		t.Fatal(err)
	}
	var bBuf bytes.Buffer
	if err := EncodeVendorB(&bBuf, fromA); err != nil {
		t.Fatal(err)
	}
	fromB, err := DecodeVendorB(&bBuf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBuilding(t, b, fromB)
}

func TestDecodeVendorARejects(t *testing.T) {
	cases := map[string]string{
		"no BLDG":        "STRY|s1|Ground|0|3\n",
		"second BLDG":    "BLDG|b|n|a|1|2|1990\nBLDG|b2|n|a|1|2|1990\n",
		"bad numeric":    "BLDG|b|n|a|x|2|1990\n",
		"unknown tag":    "BLDG|b|n|a|1|2|1990\nWAT|x\n",
		"orphan space":   "BLDG|b|n|a|1|2|1990\nSPCE|ghost|s|n|office|10\n",
		"orphan element": "BLDG|b|n|a|1|2|1990\nELEM|ghost|e|wall|5|0.5\n",
		"orphan device":  "BLDG|b|n|a|1|2|1990\nDEVC|ghost|urn:x\n",
		"short STRY":     "BLDG|b|n|a|1|2|1990\nSTRY|s1\n",
		"empty input":    "",
		"comments only":  "# hello\n\n",
	}
	for name, input := range cases {
		if _, err := DecodeVendorA(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeVendorBRejects(t *testing.T) {
	if _, err := DecodeVendorB(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := DecodeVendorB(strings.NewReader(`{"schema":"other","gebaeude":{"kennung":"b"}}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	bad := `{"schema":"vb-bim-2.3","gebaeude":{"kennung":"b","etagen":[
	  {"kennung":"s1","raeume":[{"kennung":"r1","bauteile":[{"kennung":"e1","art":"MYSTERY"}]}]}]}}`
	if _, err := DecodeVendorB(strings.NewReader(bad)); err == nil {
		t.Error("unknown element art accepted")
	}
}

func TestVendorAIgnoresCommentsAndBlanks(t *testing.T) {
	input := "# export from FM tool\nBLDG|b|n|a|45|7|2001\n\n# storeys\nSTRY|s1|Ground|0|3\n"
	b, err := DecodeVendorA(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Storeys) != 1 {
		t.Errorf("storeys = %d", len(b.Storeys))
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(SynthOptions{Seed: 7})
	b := Synthesize(SynthOptions{Seed: 7})
	if a.Summary() != b.Summary() || a.EnvelopeUA() != b.EnvelopeUA() {
		t.Error("Synthesize not deterministic for equal seeds")
	}
	c := Synthesize(SynthOptions{Seed: 8})
	if a.ID == c.ID && a.EnvelopeUA() == c.EnvelopeUA() {
		t.Error("different seeds produced identical buildings")
	}
}

func TestSynthesizeShape(t *testing.T) {
	b := Synthesize(SynthOptions{Seed: 3, Storeys: 2, SpacesPerStorey: 3, DevicesPerSpace: 1})
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Storeys) != 2 || len(b.Storeys[0].Spaces) != 3 {
		t.Errorf("shape: %s", b.Summary())
	}
	if got := len(b.DeviceURIs()); got != 6 {
		t.Errorf("devices = %d, want 6", got)
	}
	if b.EnvelopeUA() <= 0 {
		t.Error("EnvelopeUA should be positive")
	}
}

// Property: synthetic buildings always validate and round-trip VendorA.
func TestSynthesizedRoundTripProperty(t *testing.T) {
	f := func(seed int64, storeys, spaces uint8) bool {
		b := Synthesize(SynthOptions{
			Seed:            seed,
			Storeys:         int(storeys%5) + 1,
			SpacesPerStorey: int(spaces%6) + 1,
		})
		if b.Validate() != nil {
			return false
		}
		var buf bytes.Buffer
		if EncodeVendorA(&buf, b) != nil {
			return false
		}
		got, err := DecodeVendorA(&buf)
		if err != nil {
			return false
		}
		return math.Abs(got.EnvelopeUA()-b.EnvelopeUA()) < 1e-6 &&
			len(got.DeviceURIs()) == len(b.DeviceURIs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
