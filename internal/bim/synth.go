package bim

import (
	"fmt"
	"math/rand"
)

// SynthOptions parameterize the synthetic building generator, which
// stands in for the proprietary BIM exports of the paper's pilot
// buildings (DESIGN.md S9).
type SynthOptions struct {
	// ID and Name identify the building; defaults are derived from Seed.
	ID   string
	Name string
	// Lat/Lon place the building; defaults fall inside central Turin.
	Lat, Lon float64
	// Storeys and SpacesPerStorey size the building. Zero means 4 and 8.
	Storeys         int
	SpacesPerStorey int
	// DevicesPerSpace is the sensor count placed per space. Zero means 2.
	DevicesPerSpace int
	// Seed drives the deterministic generator. Zero means 1.
	Seed int64
}

// usages cycled through by the generator.
var synthUsages = []string{"office", "classroom", "corridor", "plant", "residential"}

// Synthesize builds a deterministic, validated synthetic building.
func Synthesize(opts SynthOptions) *Building {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Storeys <= 0 {
		opts.Storeys = 4
	}
	if opts.SpacesPerStorey <= 0 {
		opts.SpacesPerStorey = 8
	}
	if opts.DevicesPerSpace < 0 {
		opts.DevicesPerSpace = 0
	} else if opts.DevicesPerSpace == 0 {
		opts.DevicesPerSpace = 2
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("b%04d", rng.Intn(10000))
	}
	if opts.Name == "" {
		opts.Name = "Synthetic Building " + opts.ID
	}
	if opts.Lat == 0 {
		opts.Lat = 45.06 + rng.Float64()*0.02
	}
	if opts.Lon == 0 {
		opts.Lon = 7.65 + rng.Float64()*0.05
	}

	b := &Building{
		ID: opts.ID, Name: opts.Name,
		Address: fmt.Sprintf("Corso Synthetic %d, Torino", rng.Intn(200)+1),
		Lat:     opts.Lat, Lon: opts.Lon,
		YearBuilt: 1950 + rng.Intn(70),
	}
	deviceSeq := 0
	for s := 0; s < opts.Storeys; s++ {
		st := Storey{
			ID:        fmt.Sprintf("%s-st%02d", b.ID, s),
			Name:      fmt.Sprintf("Storey %d", s),
			Elevation: float64(s) * 3.2,
			Height:    3.0 + rng.Float64()*0.6,
		}
		for p := 0; p < opts.SpacesPerStorey; p++ {
			sp := Space{
				ID:    fmt.Sprintf("%s-sp%02d", st.ID, p),
				Name:  fmt.Sprintf("Room %d.%d", s, p),
				Usage: synthUsages[rng.Intn(len(synthUsages))],
				Area:  12 + rng.Float64()*48,
			}
			// Envelope: one external wall with a window, era-typical
			// U-values (older buildings leak more).
			wallU := 0.3 + float64(2010-b.YearBuilt)*0.012
			if wallU < 0.3 {
				wallU = 0.3
			}
			sp.Elements = append(sp.Elements,
				Element{ID: sp.ID + "-w", Kind: ElementWall, Area: sp.Area * 0.6, UValue: wallU},
				Element{ID: sp.ID + "-g", Kind: ElementWindow, Area: sp.Area * 0.15, UValue: 1.1 + rng.Float64()*1.6},
			)
			if s == opts.Storeys-1 {
				sp.Elements = append(sp.Elements,
					Element{ID: sp.ID + "-r", Kind: ElementRoof, Area: sp.Area, UValue: wallU * 0.8})
			}
			for d := 0; d < opts.DevicesPerSpace; d++ {
				sp.Devices = append(sp.Devices,
					fmt.Sprintf("urn:district:turin/building:%s/device:d%04d", b.ID, deviceSeq))
				deviceSeq++
			}
			st.Spaces = append(st.Spaces, sp)
		}
		b.Storeys = append(b.Storeys, st)
	}
	return b
}
