// Package bim implements the Building Information Model database of the
// infrastructure: one per building, as in the paper ("there is a database
// for each building, obtained from each Building Information Model").
//
// Real deployments export BIMs from vendor tools in mutually incompatible
// encodings; the paper's Database-proxy exists precisely to translate
// them into the common open format. To preserve that code path the
// package ships two deliberately different vendor encodings of the same
// model (VendorA: flat record-per-line text export; VendorB: nested JSON
// with its own vocabulary), plus a synthetic building generator standing
// in for the proprietary exports of the DIMMER pilot buildings.
package bim

import (
	"errors"
	"fmt"
	"strings"
)

// Building is the root of one building's information model.
type Building struct {
	ID      string
	Name    string
	Address string
	// Lat/Lon georeference the building, matching its GIS footprint.
	Lat, Lon float64
	// YearBuilt is the construction year (thermal-envelope era proxy).
	YearBuilt int
	Storeys   []Storey
}

// Storey is one level of a building.
type Storey struct {
	ID        string
	Name      string
	Elevation float64 // metres above ground datum
	Height    float64 // storey height in metres
	Spaces    []Space
}

// Space is a room or zone within a storey.
type Space struct {
	ID    string
	Name  string
	Usage string  // office | classroom | corridor | plant | residential
	Area  float64 // m^2
	// Devices are the ontology URIs of sensors/actuators placed here.
	Devices []string
	// Elements are the envelope elements bounding the space.
	Elements []Element
}

// ElementKind classifies envelope elements.
type ElementKind string

// Envelope element kinds.
const (
	ElementWall   ElementKind = "wall"
	ElementWindow ElementKind = "window"
	ElementDoor   ElementKind = "door"
	ElementRoof   ElementKind = "roof"
	ElementFloor  ElementKind = "floor"
)

// Element is one envelope element with its thermal properties.
type Element struct {
	ID     string
	Kind   ElementKind
	Area   float64 // m^2
	UValue float64 // thermal transmittance, W/(m^2 K)
}

// Errors reported by model validation.
var ErrInvalidModel = errors.New("bim: invalid model")

// Validate checks structural invariants: IDs present and unique, areas
// and U-values non-negative.
func (b *Building) Validate() error {
	if b.ID == "" {
		return fmt.Errorf("%w: building without ID", ErrInvalidModel)
	}
	seen := map[string]bool{}
	for si := range b.Storeys {
		st := &b.Storeys[si]
		if st.ID == "" {
			return fmt.Errorf("%w: storey %d of %s without ID", ErrInvalidModel, si, b.ID)
		}
		if seen[st.ID] {
			return fmt.Errorf("%w: duplicate storey ID %q", ErrInvalidModel, st.ID)
		}
		seen[st.ID] = true
		if st.Height < 0 {
			return fmt.Errorf("%w: storey %q negative height", ErrInvalidModel, st.ID)
		}
		for pi := range st.Spaces {
			sp := &st.Spaces[pi]
			if sp.ID == "" {
				return fmt.Errorf("%w: space %d of storey %q without ID", ErrInvalidModel, pi, st.ID)
			}
			if seen[sp.ID] {
				return fmt.Errorf("%w: duplicate space ID %q", ErrInvalidModel, sp.ID)
			}
			seen[sp.ID] = true
			if sp.Area < 0 {
				return fmt.Errorf("%w: space %q negative area", ErrInvalidModel, sp.ID)
			}
			for ei := range sp.Elements {
				el := &sp.Elements[ei]
				if el.Area < 0 || el.UValue < 0 {
					return fmt.Errorf("%w: element %q negative area or U-value", ErrInvalidModel, el.ID)
				}
			}
		}
	}
	return nil
}

// FloorArea returns the total floor area in m^2.
func (b *Building) FloorArea() float64 {
	var total float64
	for _, st := range b.Storeys {
		for _, sp := range st.Spaces {
			total += sp.Area
		}
	}
	return total
}

// HeatedVolume returns the total heated volume in m^3, approximated as
// space area times storey height.
func (b *Building) HeatedVolume() float64 {
	var total float64
	for _, st := range b.Storeys {
		for _, sp := range st.Spaces {
			total += sp.Area * st.Height
		}
	}
	return total
}

// EnvelopeUA returns the overall envelope heat loss coefficient in W/K:
// the sum of area times U-value over every envelope element. This is the
// figure district heat-demand simulation consumes.
func (b *Building) EnvelopeUA() float64 {
	var total float64
	for _, st := range b.Storeys {
		for _, sp := range st.Spaces {
			for _, el := range sp.Elements {
				total += el.Area * el.UValue
			}
		}
	}
	return total
}

// DeviceURIs lists every device placed in the building, in model order.
func (b *Building) DeviceURIs() []string {
	var out []string
	for _, st := range b.Storeys {
		for _, sp := range st.Spaces {
			out = append(out, sp.Devices...)
		}
	}
	return out
}

// SpaceByID finds a space anywhere in the building.
func (b *Building) SpaceByID(id string) (*Space, bool) {
	for si := range b.Storeys {
		for pi := range b.Storeys[si].Spaces {
			if b.Storeys[si].Spaces[pi].ID == id {
				return &b.Storeys[si].Spaces[pi], true
			}
		}
	}
	return nil, false
}

// Summary renders a one-line description used in logs and CLIs.
func (b *Building) Summary() string {
	var spaces, devices int
	for _, st := range b.Storeys {
		spaces += len(st.Spaces)
		for _, sp := range st.Spaces {
			devices += len(sp.Devices)
		}
	}
	return fmt.Sprintf("%s (%s): %d storeys, %d spaces, %d devices, %.0f m2",
		b.Name, b.ID, len(b.Storeys), spaces, devices, b.FloorArea())
}

// normalizeUsage maps vendor usage vocabulary onto the model's.
func normalizeUsage(s string) string {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "office", "ufficio", "buro":
		return "office"
	case "classroom", "aula", "lecture":
		return "classroom"
	case "corridor", "corridoio", "hall":
		return "corridor"
	case "plant", "technical", "locale tecnico":
		return "plant"
	case "residential", "apartment", "flat":
		return "residential"
	default:
		return "other"
	}
}
