package block

import (
	"io"
	"os"
)

// readFile loads the whole file into a heap buffer — the non-mmap path.
func readFile(f *os.File, size int64) ([]byte, bool, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), buf); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}
