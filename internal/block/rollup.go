package block

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Rollup resolutions maintained inside every block. Both divide the
// Unix epoch's offset from Go's zero time, so buckets computed as
// floor(T/res)*res coincide with time.Truncate boundaries.
const (
	Res1m = int64(time.Minute)
	Res1h = int64(time.Hour)
)

// Bucket is one downsampled rollup bucket: aggregates of every sample
// with Start <= T < Start+res. First/Last carry the boundary samples so
// aggregate responses that expose them stay byte-identical to a raw
// scan.
type Bucket struct {
	Start  int64 // Unix nanos, multiple of the resolution
	Count  int64
	Min    float64
	Max    float64
	Sum    float64
	FirstT int64
	FirstV float64
	LastT  int64
	LastV  float64
}

// buildRollup folds ascending points into res-sized buckets.
func buildRollup(pts []Point, res int64) []Bucket {
	var out []Bucket
	for _, p := range pts {
		start := floorDiv(p.T, res) * res
		if n := len(out); n > 0 && out[n-1].Start == start {
			b := &out[n-1]
			b.Count++
			if p.V < b.Min {
				b.Min = p.V
			}
			if p.V > b.Max {
				b.Max = p.V
			}
			b.Sum += p.V
			b.LastT, b.LastV = p.T, p.V
			continue
		}
		out = append(out, Bucket{
			Start: start, Count: 1,
			Min: p.V, Max: p.V, Sum: p.V,
			FirstT: p.T, FirstV: p.V, LastT: p.T, LastV: p.V,
		})
	}
	return out
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Rollup chunk layout: uvarint(count of buckets), then per bucket:
// varint(delta of Start/res from previous bucket; absolute for the
// first), uvarint(Count), Min/Max/Sum as little-endian float64 bits,
// uvarint(FirstT-Start), FirstV bits, uvarint(LastT-Start), LastV bits.
func appendRollup(dst []byte, bks []Bucket, res int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(bks)))
	prev := int64(0)
	for i, b := range bks {
		unit := b.Start / res
		if i == 0 {
			dst = binary.AppendVarint(dst, unit)
		} else {
			dst = binary.AppendVarint(dst, unit-prev)
		}
		prev = unit
		dst = binary.AppendUvarint(dst, uint64(b.Count))
		dst = appendF64(dst, b.Min)
		dst = appendF64(dst, b.Max)
		dst = appendF64(dst, b.Sum)
		dst = binary.AppendUvarint(dst, uint64(b.FirstT-b.Start))
		dst = appendF64(dst, b.FirstV)
		dst = binary.AppendUvarint(dst, uint64(b.LastT-b.Start))
		dst = appendF64(dst, b.LastV)
	}
	return dst
}

func decodeRollup(buf []byte, res int64) ([]Bucket, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("block: bad rollup count varint")
	}
	buf = buf[n:]
	if count > uint64(len(buf)) {
		return nil, fmt.Errorf("block: rollup count %d implausible for %d bytes", count, len(buf))
	}
	out := make([]Bucket, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Varint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("block: truncated rollup bucket %d", i)
		}
		buf = buf[n:]
		unit := d
		if i > 0 {
			unit = prev + d
		}
		prev = unit
		b := Bucket{Start: unit * res}
		c, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("block: truncated rollup bucket %d", i)
		}
		buf = buf[n:]
		b.Count = int64(c)
		var err error
		if b.Min, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		if b.Max, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		if b.Sum, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		ft, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("block: truncated rollup bucket %d", i)
		}
		buf = buf[n:]
		b.FirstT = b.Start + int64(ft)
		if b.FirstV, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		lt, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("block: truncated rollup bucket %d", i)
		}
		buf = buf[n:]
		b.LastT = b.Start + int64(lt)
		if b.LastV, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func readF64(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("block: truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), buf[8:], nil
}
