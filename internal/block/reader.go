package block

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// ErrNoSeries is returned when a block does not contain the requested
// series.
var ErrNoSeries = errors.New("block: series not in block")

// ErrRawDemoted is returned by Points when raw retention has stripped
// the series down to rollups only.
var ErrRawDemoted = errors.New("block: raw chunk demoted, rollups only")

// Block is an open, immutable block file. The byte range is mmap-ed
// where the platform supports it (so cold data lives in the page cache,
// not the Go heap) with a plain read fallback elsewhere.
//
// Blocks are reference counted: Open returns a block with one
// reference; every reader that captures it across a lock boundary must
// Retain it and Release when done. The mapping is torn down when the
// count reaches zero, so an unlinked block file stays readable for
// in-flight queries.
type Block struct {
	path   string
	data   []byte
	mapped bool
	size   int64
	minT   int64
	maxT   int64
	series []SeriesMeta // ascending (Device, Quantity)
	refs   atomic.Int64
}

// Open maps the block at path and parses its index.
func Open(path string) (*Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("block: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		err = errors.Join(err, f.Close())
		return nil, fmt.Errorf("block: %w", err)
	}
	size := st.Size()
	if size < int64(len(blockMagic))+1+frameHdrLen+footerLen {
		err = fmt.Errorf("block: %s: file too small (%d bytes)", path, size)
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	data, mapped, err := mapFile(f, size)
	// The fd is only needed for the mapping/read; the mapping (or the
	// copied buffer) survives the close.
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("block: %s: %w", path, err)
	}
	b := &Block{path: path, data: data, mapped: mapped, size: size}
	b.refs.Store(1)
	if err := b.parse(); err != nil {
		// Parse failure: drop the mapping before reporting.
		if rerr := b.unref(); rerr != nil {
			err = errors.Join(err, rerr)
		}
		return nil, err
	}
	return b, nil
}

func (b *Block) parse() error {
	d := b.data
	if string(d[:len(blockMagic)]) != blockMagic || d[len(blockMagic)] != blockVersion {
		return fmt.Errorf("block: %s: bad header magic/version", b.path)
	}
	foot := d[len(d)-footerLen:]
	if string(foot[8:]) != blockMagic {
		return fmt.Errorf("block: %s: bad footer magic (torn write?)", b.path)
	}
	idxOff := int64(binary.LittleEndian.Uint64(foot[0:8]))
	idxSec := section{off: idxOff, len: b.size - footerLen - idxOff}
	payload, err := frameAt(d, idxSec)
	if err != nil {
		return fmt.Errorf("block: %s: index: %w", b.path, err)
	}
	series, err := decodeIndex(payload)
	if err != nil {
		return fmt.Errorf("block: %s: %w", b.path, err)
	}
	if len(series) == 0 {
		return fmt.Errorf("block: %s: empty index", b.path)
	}
	b.series = series
	b.minT, b.maxT = series[0].MinT, series[0].MaxT
	for _, m := range series[1:] {
		if m.MinT < b.minT {
			b.minT = m.MinT
		}
		if m.MaxT > b.maxT {
			b.maxT = m.MaxT
		}
	}
	return nil
}

// Path returns the file path the block was opened from.
func (b *Block) Path() string { return b.path }

// Size returns the block file size in bytes.
func (b *Block) Size() int64 { return b.size }

// MinT and MaxT bound every sample timestamp in the block (Unix nanos).
func (b *Block) MinT() int64 { return b.minT }
func (b *Block) MaxT() int64 { return b.maxT }

// Series returns the index entries in ascending key order. The slice is
// shared; callers must not mutate it.
func (b *Block) Series() []SeriesMeta { return b.series }

// NumSamples returns the total raw sample count the block covers
// (including demoted series, whose counts live on in the index).
func (b *Block) NumSamples() int64 {
	var n int64
	for _, m := range b.series {
		n += m.Count
	}
	return n
}

// Meta returns the index entry for key.
func (b *Block) Meta(key Key) (SeriesMeta, bool) {
	i := sort.Search(len(b.series), func(i int) bool {
		return !b.series[i].Key.less(key)
	})
	if i < len(b.series) && b.series[i].Key == key {
		return b.series[i], true
	}
	return SeriesMeta{}, false
}

// Points decodes the raw samples of key with mint <= T <= maxt
// (inclusive bounds, matching the tsdb query contract), appending to
// dst.
func (b *Block) Points(dst []Point, key Key, mint, maxt int64) ([]Point, error) {
	return b.PointsLimit(dst, key, mint, maxt, -1)
}

// PointsLimit is Points bounded to at most max appended points (max < 0
// means unbounded). Chunk decoding is sequential, so a bounded read
// stops as soon as the page is satisfied instead of materializing the
// whole range.
func (b *Block) PointsLimit(dst []Point, key Key, mint, maxt int64, max int) ([]Point, error) {
	m, ok := b.Meta(key)
	if !ok {
		return dst, ErrNoSeries
	}
	if !m.HasRaw() {
		return dst, ErrRawDemoted
	}
	if maxt < m.MinT || mint > m.MaxT {
		return dst, nil
	}
	payload, err := frameAt(b.data, m.raw)
	if err != nil {
		return dst, fmt.Errorf("block: %s: series %v: %w", b.path, m.Key, err)
	}
	it, err := newChunkIter(payload)
	if err != nil {
		return dst, fmt.Errorf("block: %s: series %v: %w", b.path, m.Key, err)
	}
	added := 0
	for it.Next() {
		p := it.At()
		if p.T > maxt {
			break
		}
		if p.T >= mint {
			dst = append(dst, p)
			added++
			if max >= 0 && added >= max {
				break
			}
		}
	}
	if err := it.Err(); err != nil {
		return dst, fmt.Errorf("block: %s: series %v: %w", b.path, m.Key, err)
	}
	return dst, nil
}

// Rollup returns the precomputed buckets of key at res (Res1m or
// Res1h).
func (b *Block) Rollup(key Key, res int64) ([]Bucket, error) {
	m, ok := b.Meta(key)
	if !ok {
		return nil, ErrNoSeries
	}
	var s section
	switch res {
	case Res1m:
		s = m.r1m
	case Res1h:
		s = m.r1h
	default:
		return nil, fmt.Errorf("block: unsupported rollup resolution %d", res)
	}
	payload, err := frameAt(b.data, s)
	if err != nil {
		return nil, fmt.Errorf("block: %s: series %v rollup: %w", b.path, m.Key, err)
	}
	bks, err := decodeRollup(payload, res)
	if err != nil {
		return nil, fmt.Errorf("block: %s: series %v rollup: %w", b.path, m.Key, err)
	}
	return bks, nil
}

// Verify CRC-checks every frame in the block (raw chunks, rollups,
// index) and re-decodes each chunk, returning the first corruption
// found.
func (b *Block) Verify() error {
	for _, m := range b.series {
		if m.HasRaw() {
			payload, err := frameAt(b.data, m.raw)
			if err != nil {
				return err
			}
			it, err := newChunkIter(payload)
			if err != nil {
				return err
			}
			n := 0
			for it.Next() {
				n++
			}
			if err := it.Err(); err != nil {
				return fmt.Errorf("block: %s: series %v: %w", b.path, m.Key, err)
			}
			if int64(n) != m.Count {
				return fmt.Errorf("block: %s: series %v: chunk has %d points, index says %d", b.path, m.Key, n, m.Count)
			}
		}
		for _, rs := range []struct {
			s   section
			res int64
		}{{m.r1m, Res1m}, {m.r1h, Res1h}} {
			payload, err := frameAt(b.data, rs.s)
			if err != nil {
				return err
			}
			if _, err := decodeRollup(payload, rs.res); err != nil {
				return fmt.Errorf("block: %s: series %v: %w", b.path, m.Key, err)
			}
		}
	}
	return nil
}

// Retain adds a reference. Callers pairing Retain with Release may
// outlive the block's removal from its owning set; the mapping stays
// valid until the last Release.
func (b *Block) Retain() { b.refs.Add(1) }

// Release drops a reference, tearing down the mapping at zero.
func (b *Block) Release() error {
	if n := b.refs.Add(-1); n > 0 {
		return nil
	} else if n < 0 {
		return fmt.Errorf("block: %s: release without retain", b.path)
	}
	return b.unref()
}

// Close is Release under the conventional name, for the opener's own
// reference.
func (b *Block) Close() error { return b.Release() }

func (b *Block) unref() error {
	data := b.data
	b.data = nil
	b.series = nil
	if b.mapped && data != nil {
		return unmapFile(data)
	}
	return nil
}
