// Package block implements the immutable columnar block format used for
// historical (cold) time-series storage: delta-of-delta timestamps and
// XOR-compressed float values per series, precomputed 1m/1h rollup
// buckets, a per-series index, CRC-framed sections, and an atomic
// tmp+fsync+rename writer. Blocks are read via mmap where available so
// cold data stays out of the Go heap.
//
// The package is self-contained (no dependency on internal/tsdb) so the
// tsdb layer can build on top of it without an import cycle.
package block

import "errors"

// errBitsEOF is returned by bitReader when the stream runs out.
var errBitsEOF = errors.New("block: bitstream exhausted")

// bitWriter appends individual bits to a byte slice, MSB-first within
// each byte.
type bitWriter struct {
	b []byte
	// free is the number of unused low-order bits in the last byte of
	// b; 0 means the last byte is full (or b is empty).
	free uint
}

func (w *bitWriter) writeBit(bit uint64) {
	if w.free == 0 {
		w.b = append(w.b, 0)
		w.free = 8
	}
	w.free--
	if bit != 0 {
		w.b[len(w.b)-1] |= 1 << w.free
	}
}

// writeBits writes the low n bits of v, most significant first. n must
// be in [0, 64].
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.free == 0 {
			w.b = append(w.b, 0)
			w.free = 8
		}
		take := n
		if take > w.free {
			take = w.free
		}
		shift := n - take
		chunk := byte((v >> shift) & ((1 << take) - 1))
		w.free -= take
		w.b[len(w.b)-1] |= chunk << w.free
		n -= take
	}
}

func (w *bitWriter) bytes() []byte { return w.b }

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	b   []byte
	off int  // index of next byte
	rem uint // unread bits remaining in b[off-1] (0 → advance)
}

func newBitReader(b []byte) *bitReader { return &bitReader{b: b} }

func (r *bitReader) readBit() (uint64, error) {
	if r.rem == 0 {
		if r.off >= len(r.b) {
			return 0, errBitsEOF
		}
		r.off++
		r.rem = 8
	}
	r.rem--
	return uint64(r.b[r.off-1]>>r.rem) & 1, nil
}

// readBits reads n bits (n in [0, 64]) MSB-first.
func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.rem == 0 {
			if r.off >= len(r.b) {
				return 0, errBitsEOF
			}
			r.off++
			r.rem = 8
		}
		take := n
		if take > r.rem {
			take = r.rem
		}
		r.rem -= take
		chunk := uint64(r.b[r.off-1]>>r.rem) & ((1 << take) - 1)
		v = v<<take | chunk
		n -= take
	}
	return v, nil
}

// zigzag maps signed integers to unsigned so small magnitudes encode
// small.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
