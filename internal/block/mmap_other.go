//go:build !linux && !darwin

package block

import "os"

// Portable fallback: no mmap, read the file into memory.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	return readFile(f, size)
}

func unmapFile(data []byte) error { return nil }
