package block

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Point is one raw sample: T is a Unix-nanosecond timestamp, V the
// value. Chunks store points in ascending T order (ties preserved in
// input order).
type Point struct {
	T int64
	V float64
}

// Raw chunk layout: uvarint(count) followed by a bitstream.
//
// Timestamps are delta-of-delta coded in nanoseconds. The first
// timestamp is 64 raw bits; every later one encodes dod = delta -
// prevDelta (the first delta uses prevDelta = 0) zigzagged into one of
// five buckets sized for nanosecond-scale data:
//
//	'0'            dod == 0 (perfectly regular spacing)
//	'10'   + 20 b  |dod| <  2^19   (~±524 µs jitter)
//	'110'  + 32 b  |dod| <  2^31   (~±2.1 s)
//	'1110' + 48 b  |dod| <  2^47   (~±1.6 days)
//	'1111' + 64 b  anything else
//
// Values are Gorilla XOR coded: '0' repeats the previous value bit
// pattern; '1','0' reuses the previous leading/length window and writes
// only the meaningful bits; '1','1' writes 5 bits of leading-zero
// count, 6 bits of meaningful-bit length (0 encodes 64), then the
// meaningful bits.

// appendChunk appends the encoded chunk for pts to dst and returns it.
func appendChunk(dst []byte, pts []Point) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	if len(pts) == 0 {
		return dst
	}
	var w bitWriter
	w.writeBits(uint64(pts[0].T), 64)
	w.writeBits(math.Float64bits(pts[0].V), 64)
	prevT := pts[0].T
	var prevDelta int64
	prevV := math.Float64bits(pts[0].V)
	leading, sigbits := ^uint(0), uint(0) // invalid window until first '11'
	for _, p := range pts[1:] {
		delta := p.T - prevT
		dod := delta - prevDelta
		prevT, prevDelta = p.T, delta
		switch z := zigzag(dod); {
		case z == 0:
			w.writeBit(0)
		case z < 1<<20:
			w.writeBits(0b10, 2)
			w.writeBits(z, 20)
		case z < 1<<32:
			w.writeBits(0b110, 3)
			w.writeBits(z, 32)
		case z < 1<<48:
			w.writeBits(0b1110, 4)
			w.writeBits(z, 48)
		default:
			w.writeBits(0b1111, 4)
			w.writeBits(z, 64)
		}

		v := math.Float64bits(p.V)
		xor := v ^ prevV
		prevV = v
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lead := uint(leadingZeros64(xor))
		if lead > 31 {
			lead = 31
		}
		trail := uint(trailingZeros64(xor))
		sig := 64 - lead - trail
		if leading != ^uint(0) && lead >= leading && 64-lead-trail <= sigbits &&
			trail >= 64-leading-sigbits {
			// Previous window still covers the meaningful bits.
			w.writeBit(0)
			w.writeBits(xor>>(64-leading-sigbits), sigbits)
			continue
		}
		leading, sigbits = lead, sig
		w.writeBit(1)
		w.writeBits(uint64(lead), 5)
		w.writeBits(uint64(sig&0x3f), 6) // 64 encodes as 0
		w.writeBits(xor>>trail, sig)
	}
	return append(dst, w.bytes()...)
}

func leadingZeros64(v uint64) int  { return bits.LeadingZeros64(v) }
func trailingZeros64(v uint64) int { return bits.TrailingZeros64(v) }

// decodeChunk decodes every point in the chunk, appending to dst.
func decodeChunk(dst []Point, buf []byte) ([]Point, error) {
	it, err := newChunkIter(buf)
	if err != nil {
		return dst, err
	}
	for it.Next() {
		dst = append(dst, it.At())
	}
	return dst, it.Err()
}

// chunkIter streams points out of an encoded chunk.
type chunkIter struct {
	r       *bitReader
	n       int // points remaining
	first   bool
	t       int64
	delta   int64
	v       uint64
	leading uint
	sigbits uint
	haveWin bool
	cur     Point
	err     error
}

func newChunkIter(buf []byte) (*chunkIter, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("block: bad chunk count varint")
	}
	if count > uint64(len(buf))*8 {
		return nil, fmt.Errorf("block: chunk count %d implausible for %d bytes", count, len(buf))
	}
	return &chunkIter{r: newBitReader(buf[n:]), n: int(count), first: true}, nil
}

func (it *chunkIter) Next() bool {
	if it.err != nil || it.n == 0 {
		return false
	}
	it.n--
	if it.first {
		it.first = false
		t, err := it.r.readBits(64)
		if err != nil {
			it.err = err
			return false
		}
		v, err := it.r.readBits(64)
		if err != nil {
			it.err = err
			return false
		}
		it.t, it.v = int64(t), v
		it.cur = Point{T: it.t, V: math.Float64frombits(v)}
		return true
	}
	// Timestamp.
	var z uint64
	b, err := it.r.readBit()
	if err != nil {
		it.err = err
		return false
	}
	if b == 0 {
		z = 0
	} else {
		width := uint(0)
		b2, err := it.r.readBit()
		if err != nil {
			it.err = err
			return false
		}
		if b2 == 0 {
			width = 20
		} else {
			b3, err := it.r.readBit()
			if err != nil {
				it.err = err
				return false
			}
			if b3 == 0 {
				width = 32
			} else {
				b4, err := it.r.readBit()
				if err != nil {
					it.err = err
					return false
				}
				if b4 == 0 {
					width = 48
				} else {
					width = 64
				}
			}
		}
		z, err = it.r.readBits(width)
		if err != nil {
			it.err = err
			return false
		}
	}
	it.delta += unzigzag(z)
	it.t += it.delta

	// Value.
	b, err = it.r.readBit()
	if err != nil {
		it.err = err
		return false
	}
	if b != 0 {
		ctrl, err := it.r.readBit()
		if err != nil {
			it.err = err
			return false
		}
		if ctrl == 1 {
			lead, err := it.r.readBits(5)
			if err != nil {
				it.err = err
				return false
			}
			sig, err := it.r.readBits(6)
			if err != nil {
				it.err = err
				return false
			}
			if sig == 0 {
				sig = 64
			}
			it.leading, it.sigbits = uint(lead), uint(sig)
			it.haveWin = true
		} else if !it.haveWin {
			it.err = fmt.Errorf("block: chunk reuses value window before defining one")
			return false
		}
		bits, err := it.r.readBits(it.sigbits)
		if err != nil {
			it.err = err
			return false
		}
		it.v ^= bits << (64 - it.leading - it.sigbits)
	}
	it.cur = Point{T: it.t, V: math.Float64frombits(it.v)}
	return true
}

func (it *chunkIter) At() Point  { return it.cur }
func (it *chunkIter) Err() error { return it.err }
