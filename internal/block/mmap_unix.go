//go:build linux || darwin

package block

import (
	"os"
	"syscall"
)

// mapFile mmaps the file read-only. On mmap failure it falls back to
// reading the whole file into memory (mapped=false) so exotic
// filesystems still work.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if int64(int(size)) != size {
		return readFile(f, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readFile(f, size)
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
