package block

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func samePoints(t *testing.T, got, want []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("point count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].T != want[i].T {
			t.Fatalf("point %d: T got %d want %d", i, got[i].T, want[i].T)
		}
		gb, wb := math.Float64bits(got[i].V), math.Float64bits(want[i].V)
		if gb != wb {
			t.Fatalf("point %d: V bits got %016x want %016x", i, gb, wb)
		}
	}
}

func TestChunkRoundtripRegular(t *testing.T) {
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	var pts []Point
	for i := 0; i < 5000; i++ {
		pts = append(pts, Point{T: base + int64(i)*int64(time.Second), V: 20 + math.Sin(float64(i)/10)})
	}
	buf := appendChunk(nil, pts)
	// Regular 1s spacing should compress below the ~16 raw
	// bytes/sample: dod is 0 after the first two samples, and even
	// full-entropy mantissas leave the timestamps nearly free.
	if perSample := float64(len(buf)) / float64(len(pts)); perSample > 8 {
		t.Fatalf("regular series compressed to %.2f bytes/sample, want <= 8", perSample)
	}
	got, err := decodeChunk(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, got, pts)
}

func TestChunkRoundtripQuantized(t *testing.T) {
	// Realistic meter data: fixed sample cadence, values quantized to
	// the sensor's resolution (multiples of 0.25 here). This is where
	// XOR compression earns its keep.
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	var pts []Point
	for i := 0; i < 5000; i++ {
		v := math.Round((230+10*math.Sin(float64(i)/50))*4) / 4
		pts = append(pts, Point{T: base + int64(i)*int64(time.Second), V: v})
	}
	buf := appendChunk(nil, pts)
	if perSample := float64(len(buf)) / float64(len(pts)); perSample > 2.5 {
		t.Fatalf("quantized series compressed to %.2f bytes/sample, want <= 2.5", perSample)
	}
	got, err := decodeChunk(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, got, pts)
}

func TestChunkRoundtripConstant(t *testing.T) {
	base := int64(1700000000) * int64(time.Second)
	var pts []Point
	for i := 0; i < 1000; i++ {
		pts = append(pts, Point{T: base + int64(i)*int64(time.Minute), V: 42.5})
	}
	buf := appendChunk(nil, pts)
	if perSample := float64(len(buf)) / float64(len(pts)); perSample > 1 {
		t.Fatalf("constant series compressed to %.2f bytes/sample, want <= 1", perSample)
	}
	got, err := decodeChunk(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, got, pts)
}

func TestChunkRoundtripPathological(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specials := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -1e-300}
	t0 := time.Date(1999, 12, 31, 23, 59, 0, 0, time.UTC).UnixNano()
	var pts []Point
	tt := t0
	for i := 0; i < 4000; i++ {
		// Jitter across every dod bucket: ns-level through multi-day
		// gaps, including zero and negative deltas (duplicates /
		// out-of-order-equal timestamps are legal inside a chunk as
		// long as T never decreases).
		switch rng.Intn(6) {
		case 0:
			// same timestamp (duplicate)
		case 1:
			tt += int64(rng.Intn(1000)) // ns jitter
		case 2:
			tt += int64(time.Millisecond) + int64(rng.Intn(1e6))
		case 3:
			tt += int64(time.Second)
		case 4:
			tt += int64(time.Hour) + int64(rng.Intn(1e9))
		case 5:
			tt += 3 * int64(24*time.Hour)
		}
		var v float64
		if rng.Intn(4) == 0 {
			v = specials[rng.Intn(len(specials))]
		} else {
			v = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
		pts = append(pts, Point{T: tt, V: v})
	}
	buf := appendChunk(nil, pts)
	got, err := decodeChunk(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, got, pts)
}

func TestChunkRoundtripTiny(t *testing.T) {
	for _, pts := range [][]Point{
		nil,
		{{T: 0, V: 0}},
		{{T: -5e18, V: math.NaN()}},
		{{T: 1, V: 1}, {T: 2, V: 2}},
		{{T: math.MinInt64 / 2, V: 1}, {T: math.MaxInt64 / 2, V: -1}},
	} {
		buf := appendChunk(nil, pts)
		got, err := decodeChunk(nil, buf)
		if err != nil {
			t.Fatalf("%v: %v", pts, err)
		}
		samePoints(t, got, pts)
	}
}

func FuzzChunkRoundtrip(f *testing.F) {
	f.Add(int64(1700000000e9), uint8(10), int64(1e9), uint64(12345))
	f.Add(int64(0), uint8(1), int64(0), uint64(0))
	f.Add(int64(-1e15), uint8(200), int64(1e18), uint64(999))
	f.Fuzz(func(t *testing.T, start int64, n uint8, step int64, seed uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		if step < 0 {
			step = -step
		}
		pts := make([]Point, 0, n)
		tt := start
		for i := 0; i < int(n); i++ {
			gap := step/2 + rng.Int63n(step+1)
			if tt > math.MaxInt64-gap {
				break
			}
			tt += gap
			pts = append(pts, Point{T: tt, V: math.Float64frombits(rng.Uint64())})
		}
		buf := appendChunk(nil, pts)
		got, err := decodeChunk(nil, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("got %d points want %d", len(got), len(pts))
		}
		for i := range pts {
			if got[i].T != pts[i].T || math.Float64bits(got[i].V) != math.Float64bits(pts[i].V) {
				t.Fatalf("point %d mismatch", i)
			}
		}
	})
}

// FuzzChunkDecode feeds arbitrary bytes to the decoder: it must never
// panic or loop, only return points or an error.
func FuzzChunkDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(appendChunk(nil, []Point{{T: 1, V: 2}, {T: 3, V: 4}}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		pts, _ := decodeChunk(nil, buf)
		_ = pts
	})
}

func TestRollupBuckets(t *testing.T) {
	base := time.Date(2026, 3, 1, 10, 0, 0, 0, time.UTC).UnixNano()
	var pts []Point
	for i := 0; i < 600; i++ { // 10 samples/minute for an hour
		pts = append(pts, Point{T: base + int64(i)*6*int64(time.Second), V: float64(i)})
	}
	r1m := buildRollup(pts, Res1m)
	if len(r1m) != 60 {
		t.Fatalf("1m buckets: got %d want 60", len(r1m))
	}
	b0 := r1m[0]
	if b0.Count != 10 || b0.Min != 0 || b0.Max != 9 || b0.Sum != 45 {
		t.Fatalf("bucket 0: %+v", b0)
	}
	if b0.FirstT != base || b0.LastT != base+9*6*int64(time.Second) {
		t.Fatalf("bucket 0 first/last: %+v", b0)
	}
	r1h := buildRollup(pts, Res1h)
	if len(r1h) != 1 || r1h[0].Count != 600 {
		t.Fatalf("1h buckets: %+v", r1h)
	}
	// Codec roundtrip.
	enc := appendRollup(nil, r1m, Res1m)
	dec, err := decodeRollup(enc, Res1m)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(r1m) {
		t.Fatalf("decoded %d buckets want %d", len(dec), len(r1m))
	}
	for i := range dec {
		if dec[i] != r1m[i] {
			t.Fatalf("bucket %d: got %+v want %+v", i, dec[i], r1m[i])
		}
	}
}

func TestRollupAlignsWithTruncate(t *testing.T) {
	// floor(T/res)*res must equal time.Truncate for 1m and 1h, or the
	// rollup pushdown would disagree with the head's bucketing.
	times := []time.Time{
		time.Date(2026, 3, 1, 10, 37, 59, 999999999, time.UTC),
		time.Unix(0, 0),
		time.Date(1969, 12, 31, 23, 59, 59, 1, time.UTC),
		time.Date(2100, 1, 1, 0, 0, 30, 0, time.UTC),
	}
	for _, tm := range times {
		for _, res := range []int64{Res1m, Res1h} {
			got := floorDiv(tm.UnixNano(), res) * res
			want := tm.Truncate(time.Duration(res)).UnixNano()
			if got != want {
				t.Fatalf("%v res=%d: floor %d truncate %d", tm, res, got, want)
			}
		}
	}
}

func writeTestBlock(t *testing.T, dir string) (string, map[Key][]Point) {
	t.Helper()
	path := filepath.Join(dir, "0000000000000001.blk")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	data := map[Key][]Point{}
	keys := []Key{
		{Device: "dev-a", Quantity: "power"},
		{Device: "dev-a", Quantity: "temp"},
		{Device: "dev-b", Quantity: "power"},
	}
	for ki, k := range keys {
		var pts []Point
		for i := 0; i < 500; i++ {
			pts = append(pts, Point{T: base + int64(i)*int64(30*time.Second), V: float64(ki*1000 + i)})
		}
		data[k] = pts
		if err := w.Add(k, pts); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestBlockWriteReadVerify(t *testing.T) {
	dir := t.TempDir()
	path, data := writeTestBlock(t, dir)
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(b.Series()) != 3 {
		t.Fatalf("series count %d", len(b.Series()))
	}
	for k, want := range data {
		got, err := b.Points(nil, k, math.MinInt64, math.MaxInt64)
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, got, want)
		// Range query clips inclusively.
		mid := want[100].T
		end := want[200].T
		got, err = b.Points(nil, k, mid, end)
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, got, want[100:201])
		m, ok := b.Meta(k)
		if !ok || m.Count != int64(len(want)) {
			t.Fatalf("meta %v: %+v ok=%v", k, m, ok)
		}
		var sum float64
		for _, p := range want {
			sum += p.V
		}
		if m.Sum != sum || m.Min != want[0].V || m.Max != want[len(want)-1].V {
			t.Fatalf("meta aggregates %v: %+v", k, m)
		}
		r1m, err := b.Rollup(k, Res1m)
		if err != nil {
			t.Fatal(err)
		}
		var cnt int64
		for _, bk := range r1m {
			cnt += bk.Count
		}
		if cnt != int64(len(want)) {
			t.Fatalf("rollup count %d want %d", cnt, len(want))
		}
	}
	if _, err := b.Points(nil, Key{Device: "nope", Quantity: "x"}, 0, math.MaxInt64); err != ErrNoSeries {
		t.Fatalf("missing series: %v", err)
	}
}

func TestBlockCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeTestBlock(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the body: Verify must catch it.
	mut := append([]byte(nil), raw...)
	mut[len(mut)/3] ^= 0x40
	bad := filepath.Join(dir, "corrupt.blk")
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Open(bad)
	if err == nil {
		verr := b.Verify()
		if cerr := b.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if verr == nil {
			t.Fatal("corrupted block passed Verify")
		}
	}
	// Truncated file (torn write under the final name) must fail Open.
	torn := filepath.Join(dir, "torn.blk")
	if err := os.WriteFile(torn, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if tb, err := Open(torn); err == nil {
		if cerr := tb.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		t.Fatal("torn block opened cleanly")
	}
}

func TestWriterDemotedRollups(t *testing.T) {
	dir := t.TempDir()
	path, data := writeTestBlock(t, dir)
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite rollup-only, as raw retention demotion does.
	demoted := filepath.Join(dir, "demoted.blk")
	w, err := NewWriter(demoted)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range b.Series() {
		r1m, err := b.Rollup(m.Key, Res1m)
		if err != nil {
			t.Fatal(err)
		}
		r1h, err := b.Rollup(m.Key, Res1h)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AddRollups(m, r1m, r1h); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := Open(demoted)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
	k := Key{Device: "dev-a", Quantity: "power"}
	if _, err := db.Points(nil, k, 0, math.MaxInt64); err != ErrRawDemoted {
		t.Fatalf("demoted Points: %v", err)
	}
	m, ok := db.Meta(k)
	if !ok || m.HasRaw() || m.Count != int64(len(data[k])) {
		t.Fatalf("demoted meta: %+v ok=%v", m, ok)
	}
	r1h, err := db.Rollup(k, Res1h)
	if err != nil {
		t.Fatal(err)
	}
	var cnt int64
	for _, bk := range r1h {
		cnt += bk.Count
	}
	if cnt != int64(len(data[k])) {
		t.Fatalf("demoted rollup count %d want %d", cnt, len(data[k]))
	}
	// Demoted block is strictly smaller than the original.
	oi, _ := os.Stat(path)
	di, _ := os.Stat(demoted)
	if di.Size() >= oi.Size() {
		t.Fatalf("demoted block %d bytes >= original %d", di.Size(), oi.Size())
	}
}

func TestWriterOrderEnforced(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(filepath.Join(dir, "x.blk"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	pts := []Point{{T: 1, V: 1}}
	if err := w.Add(Key{Device: "b", Quantity: "q"}, pts); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Key{Device: "a", Quantity: "q"}, pts); err == nil {
		t.Fatal("out-of-order Add accepted")
	}
}

func TestWriterAtomicNoPartialFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "never.blk")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Key{Device: "d", Quantity: "q"}, []Point{{T: 1, V: 1}}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path exists after abort: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("abort left files behind: %v", ents)
	}
}
