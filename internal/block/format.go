package block

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk layout of a block file:
//
//	header   "RBLK" magic + 1 version byte
//	body     per series, in ascending (Device, Quantity) order:
//	           raw chunk frame (omitted for rollup-only series)
//	           1m rollup frame
//	           1h rollup frame
//	index    one frame describing every series (see appendIndex)
//	footer   u64 little-endian offset of the index frame + "RBLK"
//
// Every frame is [u32 len][u32 crc32c(payload)][payload], the same
// Castagnoli framing the WAL uses, so torn or bit-flipped sections are
// detected on read rather than trusted.
const (
	blockMagic   = "RBLK"
	blockVersion = 1
	frameHdrLen  = 8
	footerLen    = 8 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Key identifies one series inside a block.
type Key struct {
	Device   string
	Quantity string
}

func (k Key) less(o Key) bool {
	if k.Device != o.Device {
		return k.Device < o.Device
	}
	return k.Quantity < o.Quantity
}

type section struct {
	off int64 // frame start, from beginning of file
	len int64 // frame length including the 8-byte frame header
}

// SeriesMeta is the per-series index entry: time bounds, whole-series
// aggregates (enough to answer a fully-covering Aggregate without
// touching any chunk), and section locations.
type SeriesMeta struct {
	Key    Key
	MinT   int64
	MaxT   int64
	Count  int64
	Min    float64
	Max    float64
	Sum    float64
	FirstT int64
	FirstV float64
	LastT  int64
	LastV  float64

	raw section // len 0 → raw demoted away (rollup-only series)
	r1m section
	r1h section
}

// HasRaw reports whether the series still carries its raw chunk (false
// once raw retention has demoted the block to rollups only).
func (m SeriesMeta) HasRaw() bool { return m.raw.len != 0 }

func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// frameAt validates and returns the payload of the frame at s within
// data.
func frameAt(data []byte, s section) ([]byte, error) {
	if s.off < 0 || s.len < frameHdrLen || s.off+s.len > int64(len(data)) {
		return nil, fmt.Errorf("block: frame [%d,+%d) out of bounds (file %d bytes)", s.off, s.len, len(data))
	}
	f := data[s.off : s.off+s.len]
	n := binary.LittleEndian.Uint32(f[0:4])
	if int64(n)+frameHdrLen != s.len {
		return nil, fmt.Errorf("block: frame length mismatch at %d: header %d, index %d", s.off, n, s.len-frameHdrLen)
	}
	want := binary.LittleEndian.Uint32(f[4:8])
	payload := f[frameHdrLen:]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("block: frame crc mismatch at %d: got %08x want %08x", s.off, got, want)
	}
	return payload, nil
}

func appendIndex(dst []byte, series []SeriesMeta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(series)))
	for _, m := range series {
		dst = appendString(dst, m.Key.Device)
		dst = appendString(dst, m.Key.Quantity)
		dst = binary.AppendVarint(dst, m.MinT)
		dst = binary.AppendVarint(dst, m.MaxT)
		dst = binary.AppendUvarint(dst, uint64(m.Count))
		dst = appendF64(dst, m.Min)
		dst = appendF64(dst, m.Max)
		dst = appendF64(dst, m.Sum)
		dst = binary.AppendVarint(dst, m.FirstT)
		dst = appendF64(dst, m.FirstV)
		dst = binary.AppendVarint(dst, m.LastT)
		dst = appendF64(dst, m.LastV)
		for _, s := range []section{m.raw, m.r1m, m.r1h} {
			dst = binary.AppendUvarint(dst, uint64(s.off))
			dst = binary.AppendUvarint(dst, uint64(s.len))
		}
	}
	return dst
}

func decodeIndex(buf []byte) ([]SeriesMeta, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("block: bad index count varint")
	}
	buf = buf[n:]
	if count > uint64(len(buf)) {
		return nil, fmt.Errorf("block: index count %d implausible for %d bytes", count, len(buf))
	}
	out := make([]SeriesMeta, 0, count)
	var err error
	for i := uint64(0); i < count; i++ {
		var m SeriesMeta
		if m.Key.Device, buf, err = readString(buf); err != nil {
			return nil, fmt.Errorf("block: index series %d: %w", i, err)
		}
		if m.Key.Quantity, buf, err = readString(buf); err != nil {
			return nil, fmt.Errorf("block: index series %d: %w", i, err)
		}
		ints := []*int64{&m.MinT, &m.MaxT}
		for _, p := range ints {
			v, n := binary.Varint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("block: truncated index series %d", i)
			}
			*p, buf = v, buf[n:]
		}
		c, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("block: truncated index series %d", i)
		}
		m.Count, buf = int64(c), buf[n:]
		if m.Min, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		if m.Max, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		if m.Sum, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		v, n := binary.Varint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("block: truncated index series %d", i)
		}
		m.FirstT, buf = v, buf[n:]
		if m.FirstV, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		v, n = binary.Varint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("block: truncated index series %d", i)
		}
		m.LastT, buf = v, buf[n:]
		if m.LastV, buf, err = readF64(buf); err != nil {
			return nil, err
		}
		for _, p := range []*section{&m.raw, &m.r1m, &m.r1h} {
			off, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("block: truncated index series %d", i)
			}
			buf = buf[n:]
			ln, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("block: truncated index series %d", i)
			}
			buf = buf[n:]
			*p = section{off: int64(off), len: int64(ln)}
		}
		out = append(out, m)
	}
	return out, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || n > uint64(len(buf)-w) {
		return "", nil, fmt.Errorf("truncated string")
	}
	return string(buf[w : w+int(n)]), buf[w+int(n):], nil
}
