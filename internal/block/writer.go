package block

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Suffix is the filename extension of block files inside a shard dir.
const Suffix = ".blk"

// Writer builds one block file. Series must be added in strictly
// ascending (Device, Quantity) order with their points sorted by
// ascending timestamp. The file is written to <path>.tmp and only
// renamed into place by Finish, so a crash mid-write never leaves a
// partial block under the final name.
type Writer struct {
	path string
	tmp  string
	f    *os.File
	w    *bufio.Writer
	off  int64
	meta []SeriesMeta
	buf  []byte
	err  error
}

// NewWriter opens a block writer targeting the final path.
func NewWriter(path string) (*Writer, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("block: %w", err)
	}
	w := &Writer{path: path, tmp: tmp, f: f, w: bufio.NewWriterSize(f, 1<<16)}
	hdr := append([]byte(blockMagic), blockVersion)
	if _, err := w.w.Write(hdr); err != nil {
		w.Abort()
		return nil, fmt.Errorf("block: %w", err)
	}
	w.off = int64(len(hdr))
	return w, nil
}

// Add appends one series with its raw points (ascending T) and derives
// its rollups and index aggregates.
func (w *Writer) Add(key Key, pts []Point) error {
	if w.err != nil {
		return w.err
	}
	if len(pts) == 0 {
		return nil
	}
	m := SeriesMeta{
		Key:    key,
		MinT:   pts[0].T,
		MaxT:   pts[len(pts)-1].T,
		Count:  int64(len(pts)),
		FirstT: pts[0].T, FirstV: pts[0].V,
		LastT: pts[len(pts)-1].T, LastV: pts[len(pts)-1].V,
	}
	m.Min, m.Max, m.Sum = pts[0].V, pts[0].V, 0
	for _, p := range pts {
		if p.V < m.Min {
			m.Min = p.V
		}
		if p.V > m.Max {
			m.Max = p.V
		}
		m.Sum += p.V
	}
	raw := appendChunk(w.buf[:0], pts)
	var err error
	if m.raw, err = w.writeFrame(raw); err != nil {
		return err
	}
	w.buf = raw[:0]
	return w.addRollups(m, buildRollup(pts, Res1m), buildRollup(pts, Res1h))
}

// AddRollups appends a series that keeps only its rollups — the
// demotion path when raw retention expires. meta's aggregates are
// preserved verbatim; its section offsets are recomputed.
func (w *Writer) AddRollups(meta SeriesMeta, r1m, r1h []Bucket) error {
	if w.err != nil {
		return w.err
	}
	meta.raw = section{}
	return w.addRollups(meta, r1m, r1h)
}

func (w *Writer) addRollups(m SeriesMeta, r1m, r1h []Bucket) error {
	if n := len(w.meta); n > 0 && !w.meta[n-1].Key.less(m.Key) {
		return w.fail(fmt.Errorf("block: series %v added out of order", m.Key))
	}
	var err error
	b := appendRollup(w.buf[:0], r1m, Res1m)
	if m.r1m, err = w.writeFrame(b); err != nil {
		return err
	}
	b = appendRollup(b[:0], r1h, Res1h)
	if m.r1h, err = w.writeFrame(b); err != nil {
		return err
	}
	w.buf = b[:0]
	w.meta = append(w.meta, m)
	return nil
}

func (w *Writer) writeFrame(payload []byte) (section, error) {
	s := section{off: w.off, len: int64(frameHdrLen + len(payload))}
	var h [frameHdrLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.w.Write(h[:]); err != nil {
		return section{}, w.fail(err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return section{}, w.fail(err)
	}
	w.off += s.len
	return s, nil
}

// Finish writes the index and footer, fsyncs, and renames the file into
// place. It returns the series metas as written (for the caller to
// publish) and the final byte size.
func (w *Writer) Finish() ([]SeriesMeta, int64, error) {
	if w.err != nil {
		return nil, 0, w.err
	}
	if len(w.meta) == 0 {
		w.Abort()
		return nil, 0, fmt.Errorf("block: refusing to write empty block")
	}
	idx := appendIndex(w.buf[:0], w.meta)
	idxSec, err := w.writeFrame(idx)
	if err != nil {
		return nil, 0, err
	}
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(idxSec.off))
	copy(footer[8:], blockMagic)
	if _, err := w.w.Write(footer[:]); err != nil {
		return nil, 0, w.fail(err)
	}
	w.off += footerLen
	err = w.w.Flush()
	if err == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		w.err = fmt.Errorf("block: finish: %w", err)
		os.Remove(w.tmp)
		return nil, 0, w.err
	}
	w.f = nil
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		w.err = fmt.Errorf("block: %w", err)
		return nil, 0, w.err
	}
	// Best effort: the data fsync above already landed, and some
	// filesystems reject directory fsync.
	_ = syncDir(filepath.Dir(w.path))
	w.err = errors.New("block: writer finished")
	return w.meta, w.off, nil
}

// Abort discards the writer and its temp file.
func (w *Writer) Abort() {
	if w.f != nil {
		_ = w.f.Close() //lint:ignore closecheck aborting: the temp file is deleted below, nothing durable depends on it
		w.f = nil
	}
	os.Remove(w.tmp)
	if w.err == nil {
		w.err = errors.New("block: writer aborted")
	}
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	return errors.Join(err, d.Close())
}
