// Package tsdb is the time-series storage engine used at two points of the
// infrastructure: as the "local database" middle layer of every
// device-proxy (Fig. 1b of the paper) and as the backing store of the
// global measurements database service.
//
// The engine stores samples per series, where a series is identified by a
// (device URI, quantity) pair. Samples within a series are kept in
// append-mostly segments ordered by timestamp; out-of-order arrivals are
// tolerated and merged on read. A configurable retention bound keeps the
// per-series footprint constant, matching the buffering role the proxy's
// local database plays in the paper.
package tsdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// SeriesKey identifies one time series.
type SeriesKey struct {
	Device   string
	Quantity string
}

// String renders the key in the device|quantity form used in logs.
func (k SeriesKey) String() string { return k.Device + "|" + k.Quantity }

// Sample is one timestamped value.
type Sample struct {
	At    time.Time
	Value float64
}

// Errors returned by the engine.
var (
	ErrNoSeries    = errors.New("tsdb: series not found")
	ErrBadInterval = errors.New("tsdb: interval end before start")
	ErrClosed      = errors.New("tsdb: store closed")
)

// Options configure a Store.
type Options struct {
	// MaxSamplesPerSeries bounds each series; once exceeded the oldest
	// samples are evicted. Zero means the engine default (65536).
	MaxSamplesPerSeries int
	// Retention drops samples older than now-Retention at append time.
	// Zero disables time-based retention.
	Retention time.Duration
	// SegmentSize is the number of samples per internal segment. Zero
	// means the engine default (1024).
	SegmentSize int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxSamplesPerSeries <= 0 {
		out.MaxSamplesPerSeries = 65536
	}
	if out.SegmentSize <= 0 {
		out.SegmentSize = 1024
	}
	return out
}

// Store is a thread-safe multi-series sample store.
type Store struct {
	opts Options

	// mu guards the series catalog; every append and query resolves its
	// series through it, so it must never cover disk or network time.
	mu     sync.RWMutex // districtlint:lockio
	series map[SeriesKey]*series
	closed bool
}

// series holds the segments of one series. Segments are time-ordered
// relative to each other except for the spill segment, which absorbs
// out-of-order writes and is merged on read.
type series struct {
	// mu serializes one series' readers and writers; snapshot dumps
	// copy under it and do their file IO after the unlock.
	mu       sync.Mutex // districtlint:lockio
	segments []*segment
	spill    []Sample // out-of-order arrivals, unsorted
	count    int
	lastAt   time.Time
}

// segment is a bounded run of time-ordered samples.
type segment struct {
	samples []Sample
}

// New creates a Store with the given options.
func New(opts Options) *Store {
	return &Store{opts: opts.withDefaults(), series: make(map[SeriesKey]*series)}
}

// Close marks the store closed; subsequent appends fail with ErrClosed.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// getOrCreate resolves (creating on first write) the series of a key.
func (s *Store) getOrCreate(key SeriesKey) (*series, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	sr := s.series[key]
	s.mu.RUnlock()
	if sr == nil {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		sr = s.series[key]
		if sr == nil {
			sr = &series{}
			s.series[key] = sr
		}
		s.mu.Unlock()
	}
	return sr, nil
}

// put stores one sample in a locked series: ordered tail append or
// out-of-order spill.
func (sr *series) put(smp Sample, segSize int) {
	if !smp.At.Before(sr.lastAt) {
		sr.appendOrdered(smp, segSize)
		sr.lastAt = smp.At
	} else {
		sr.spill = append(sr.spill, smp)
	}
	sr.count++
}

// Append stores one sample in the series for key. Samples older than the
// retention window are dropped silently (they would be evicted
// immediately anyway); the method still succeeds.
func (s *Store) Append(key SeriesKey, smp Sample) error {
	if s.opts.Retention > 0 && time.Since(smp.At) > s.opts.Retention {
		return nil
	}
	sr, err := s.getOrCreate(key)
	if err != nil {
		return err
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.put(smp, s.opts.SegmentSize)
	sr.evict(s.opts.MaxSamplesPerSeries)
	return nil
}

// appendRun stores a run of same-series rows (row keys are ignored;
// the run is stored under key) with one series resolution and one lock
// acquisition for the whole run. Per-sample semantics match Append;
// eviction runs once after the run, so the per-series bound may
// transiently overshoot by at most the run length.
func (s *Store) appendRun(key SeriesKey, rows []Row) error {
	sr, err := s.getOrCreate(key)
	if err != nil {
		return err
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for i := range rows {
		smp := rows[i].Sample
		if s.opts.Retention > 0 && time.Since(smp.At) > s.opts.Retention {
			continue
		}
		sr.put(smp, s.opts.SegmentSize)
	}
	sr.evict(s.opts.MaxSamplesPerSeries)
	return nil
}

func (sr *series) appendOrdered(smp Sample, segSize int) {
	n := len(sr.segments)
	if n == 0 || len(sr.segments[n-1].samples) >= segSize {
		sr.segments = append(sr.segments, &segment{samples: make([]Sample, 0, segSize)})
		n++
	}
	seg := sr.segments[n-1]
	seg.samples = append(seg.samples, smp)
}

// evict drops oldest samples until count <= max. The spill segment is
// folded in first when eviction is needed, so ordering is preserved.
func (sr *series) evict(max int) {
	if sr.count <= max {
		return
	}
	if len(sr.spill) > 0 {
		sr.foldSpill()
	}
	excess := sr.count - max
	for excess > 0 && len(sr.segments) > 0 {
		head := sr.segments[0]
		if len(head.samples) <= excess {
			excess -= len(head.samples)
			sr.count -= len(head.samples)
			sr.segments = sr.segments[1:]
			continue
		}
		head.samples = head.samples[excess:]
		sr.count -= excess
		excess = 0
	}
}

// foldSpill merges the out-of-order spill into the ordered segments by a
// full rebuild. Spills are rare in practice (device clocks are monotonic)
// so the rebuild cost is acceptable.
func (sr *series) foldSpill() {
	all := sr.flatten()
	sort.Slice(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })
	sr.segments = nil
	sr.spill = nil
	sr.count = 0
	for _, smp := range all {
		sr.appendOrdered(smp, 1024)
		sr.count++
	}
	if n := len(all); n > 0 {
		sr.lastAt = all[n-1].At
	}
}

func (sr *series) flatten() []Sample {
	out := make([]Sample, 0, sr.count)
	for _, seg := range sr.segments {
		out = append(out, seg.samples...)
	}
	out = append(out, sr.spill...)
	return out
}

// Query returns the samples of a series with At in [from, to], in
// ascending time order. A zero `to` means "now".
func (s *Store) Query(key SeriesKey, from, to time.Time) ([]Sample, error) {
	if to.IsZero() {
		to = time.Now()
	}
	if to.Before(from) {
		return nil, ErrBadInterval
	}
	s.mu.RLock()
	sr := s.series[key]
	s.mu.RUnlock()
	if sr == nil {
		return nil, ErrNoSeries
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if len(sr.spill) > 0 {
		sr.foldSpill()
	}
	// Segments are time-ordered; skip whole segments outside the range
	// and binary-search only within boundary segments, so query cost is
	// O(#segments + result) rather than O(series length).
	var out []Sample
	for _, seg := range sr.segments {
		n := len(seg.samples)
		if n == 0 || seg.samples[n-1].At.Before(from) {
			continue
		}
		if seg.samples[0].At.After(to) {
			break
		}
		lo := sort.Search(n, func(i int) bool { return !seg.samples[i].At.Before(from) })
		hi := sort.Search(n, func(i int) bool { return seg.samples[i].At.After(to) })
		out = append(out, seg.samples[lo:hi]...)
	}
	return out, nil
}

// Latest returns the most recent sample of a series.
func (s *Store) Latest(key SeriesKey) (Sample, error) {
	s.mu.RLock()
	sr := s.series[key]
	s.mu.RUnlock()
	if sr == nil {
		return Sample{}, ErrNoSeries
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if len(sr.spill) > 0 {
		sr.foldSpill()
	}
	if len(sr.segments) == 0 {
		return Sample{}, ErrNoSeries
	}
	last := sr.segments[len(sr.segments)-1]
	return last.samples[len(last.samples)-1], nil
}

// Len reports the number of stored samples of a series (0 if absent).
func (s *Store) Len(key SeriesKey) int {
	s.mu.RLock()
	sr := s.series[key]
	s.mu.RUnlock()
	if sr == nil {
		return 0
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.count
}

// Keys returns all series keys, in no particular order.
func (s *Store) Keys() []SeriesKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SeriesKey, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	return out
}

// KeysForDevice returns the series keys belonging to one device URI.
func (s *Store) KeysForDevice(device string) []SeriesKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []SeriesKey
	for k := range s.series {
		if k.Device == device {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Quantity < out[j].Quantity })
	return out
}

// Aggregate summarizes a time range of a series.
type Aggregate struct {
	Count       int
	Min, Max    float64
	Sum, Mean   float64
	First, Last Sample
}

// Aggregate computes summary statistics over [from, to]. It walks the
// range through the paging iterator, so memory stays bounded however
// large the range is — the aggregation is pushed down into the store
// instead of flattening the samples first.
func (s *Store) Aggregate(key SeriesKey, from, to time.Time) (Aggregate, error) {
	it := s.Iter(key, from, to, 0)
	var a Aggregate
	for {
		smp, ok := it.Next()
		if !ok {
			break
		}
		a.add(smp)
	}
	if err := it.Err(); err != nil {
		return Aggregate{}, err
	}
	a.finish()
	return a, nil
}

// add folds one sample into the running aggregate. Mean is filled by
// finish, once, not per row — add runs in the pushdown hot loops.
func (a *Aggregate) add(smp Sample) {
	if a.Count == 0 {
		a.Min, a.Max = smp.Value, smp.Value
		a.First = smp
	}
	if smp.Value < a.Min {
		a.Min = smp.Value
	}
	if smp.Value > a.Max {
		a.Max = smp.Value
	}
	a.Sum += smp.Value
	a.Last = smp
	a.Count++
}

// finish computes the derived fields of a folded aggregate.
func (a *Aggregate) finish() {
	if a.Count > 0 {
		a.Mean = a.Sum / float64(a.Count)
	}
}

// Bucket is one downsampled window.
type Bucket struct {
	Start time.Time
	Aggregate
}

// Downsample splits [from, to) into fixed windows of the given width and
// aggregates each. Empty windows are omitted. Like Aggregate, the range
// is walked through the paging iterator: only the running bucket is held
// in memory, never the raw samples.
func (s *Store) Downsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Bucket, error) {
	if window <= 0 {
		return nil, fmt.Errorf("tsdb: non-positive window %v", window)
	}
	return downsampleIter(s.Iter(key, from, to, 0), from, window)
}

// downsampleIter folds an iterator's samples into fixed windows — the
// shared core of Store.Downsample and the merged head+block raw
// fallback path.
func downsampleIter(it *Iterator, from time.Time, window time.Duration) ([]Bucket, error) {
	var out []Bucket
	var cur Aggregate
	var curStart time.Time
	flush := func() {
		if cur.Count > 0 {
			cur.finish()
			out = append(out, Bucket{Start: curStart, Aggregate: cur})
			cur = Aggregate{}
		}
	}
	for {
		smp, ok := it.Next()
		if !ok {
			break
		}
		start := smp.At.Truncate(window)
		if start.Before(from) {
			start = from
		}
		if !start.Equal(curStart) {
			flush()
			curStart = start
		}
		cur.add(smp)
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	flush()
	return out, nil
}

// collectBefore returns, per series, copies of every stored sample with
// At before t, in ascending time order (spills are folded first). The
// compactor calls it on the shard worker to gather the rows a block cut
// will cover; series with no old samples are omitted.
func (s *Store) collectBefore(t time.Time) map[SeriesKey][]Sample {
	out := make(map[SeriesKey][]Sample)
	for _, key := range s.Keys() {
		s.mu.RLock()
		sr := s.series[key]
		s.mu.RUnlock()
		if sr == nil {
			continue
		}
		sr.mu.Lock()
		if len(sr.spill) > 0 {
			sr.foldSpill()
		}
		var old []Sample
		for _, seg := range sr.segments {
			n := len(seg.samples)
			if n == 0 {
				continue
			}
			if !seg.samples[0].At.Before(t) {
				break
			}
			hi := searchSamples(seg.samples, func(smp Sample) bool { return !smp.At.Before(t) })
			old = append(old, seg.samples[:hi]...)
			if hi < n {
				break
			}
		}
		sr.mu.Unlock()
		if len(old) > 0 {
			out[key] = old
		}
	}
	return out
}

// evictBefore drops every stored sample with At before t from every
// series, keeping the (possibly now-empty) series entries in the
// catalog. Purely in-memory — the compactor runs it under the block
// view's write lock to swap "rows in head" for "rows in the new block"
// atomically against readers.
func (s *Store) evictBefore(t time.Time) {
	for _, key := range s.Keys() {
		s.mu.RLock()
		sr := s.series[key]
		s.mu.RUnlock()
		if sr == nil {
			continue
		}
		sr.mu.Lock()
		if len(sr.spill) > 0 {
			sr.foldSpill()
		}
		for len(sr.segments) > 0 {
			seg := sr.segments[0]
			n := len(seg.samples)
			if n == 0 {
				sr.segments = sr.segments[1:]
				continue
			}
			if !seg.samples[0].At.Before(t) {
				break
			}
			hi := searchSamples(seg.samples, func(smp Sample) bool { return !smp.At.Before(t) })
			sr.count -= hi
			if hi == n {
				sr.segments = sr.segments[1:]
				continue
			}
			seg.samples = seg.samples[hi:]
			break
		}
		if len(sr.segments) == 0 {
			sr.lastAt = time.Time{}
			if len(sr.spill) == 0 {
				sr.count = 0
			}
		}
		sr.mu.Unlock()
	}
}

// Stats summarizes the whole store (or, for a Sharded engine, all
// shards together — Shards is then the partition count, 0 for a plain
// Store).
type Stats struct {
	Series  int
	Samples int
	Shards  int `json:",omitempty"`
	// DroppedRows counts fire-and-forget rows a durable Sharded engine
	// discarded on WAL failure (always 0 for a plain or in-memory
	// engine).
	DroppedRows uint64 `json:",omitempty"`
}

// Stats reports store-wide counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Series: len(s.series)}
	for _, sr := range s.series {
		sr.mu.Lock()
		st.Samples += sr.count
		sr.mu.Unlock()
	}
	return st
}

// Drop removes a whole series.
func (s *Store) Drop(key SeriesKey) {
	s.mu.Lock()
	delete(s.series, key)
	s.mu.Unlock()
}

// Reset drops every series in one critical section, returning the store
// to empty. Readers holding a series pointer finish against the
// orphaned catalog; new lookups see nothing.
func (s *Store) Reset() {
	s.mu.Lock()
	s.series = make(map[SeriesKey]*series)
	s.mu.Unlock()
}
