package tsdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/wal"
)

// The columnar block layer of the durable Sharded engine. At snapshot
// cadence each shard's worker CUTS the head rows older than the
// configured head window into an immutable compressed block file
// (delta-of-delta timestamps, XOR floats, 1m/1h rollups — see
// internal/block), then writes a head snapshot whose FIRST record is a
// manifest naming the live block files, truncates the WAL below the
// watermark, and — atomically against readers — publishes the block and
// evicts the cut rows from the in-memory head. Reads merge the head
// with the blocks behind the same Iterator/QueryPage cursor contract,
// so callers cannot tell where the RAM/disk boundary sits.
//
// Crash safety is manifest-anchored: a block file becomes real only
// when a durable snapshot names it. Recovery opens exactly the
// manifest's blocks and deletes any stray *.blk — a crash between block
// write and snapshot write leaves the WAL untruncated, so the orphan's
// rows replay into the head and are simply cut again later.
//
// Retention rides the same loop: blocks entirely older than the raw
// horizon are demoted (rewritten without their raw chunks, keeping
// rollups and index aggregates), and blocks entirely older than the
// rollup horizon are deleted.

// DefaultHeadWindow is how much recent data stays in the in-memory head
// when BlockPolicy.HeadWindow is zero on a durable engine.
const DefaultHeadWindow = 30 * time.Minute

// BlockPolicy configures the columnar block layer of a durable engine.
// The zero value enables blocks with DefaultHeadWindow and infinite
// retention.
type BlockPolicy struct {
	// HeadWindow is how much recent data stays in the in-memory head;
	// at snapshot cadence, rows older than now-HeadWindow are cut into
	// a block file. Zero means DefaultHeadWindow; negative disables
	// block cutting (existing blocks are still served).
	HeadWindow time.Duration
	// RetentionRaw demotes blocks entirely older than now-RetentionRaw
	// to rollups only (raw chunks dropped, 1m/1h buckets and index
	// aggregates kept). Zero keeps raw data forever.
	RetentionRaw time.Duration
	// RetentionRollup deletes blocks entirely older than
	// now-RetentionRollup. Zero keeps rollups forever.
	RetentionRollup time.Duration
}

func (p BlockPolicy) headWindow() time.Duration {
	if p.HeadWindow == 0 {
		return DefaultHeadWindow
	}
	return p.HeadWindow
}

// blockSet is one shard's published view of its block files. Only the
// shard worker mutates the list (cut, demote, drop, import, reset);
// readers capture it under the read lock together with their head read,
// which is what makes a compaction's publish+evict atomic to them.
type blockSet struct {
	dir string

	// mu guards the view swap; block file IO happens strictly outside
	// it (readers retain blocks under the lock and decode after
	// unlock; the compactor writes files before taking it).
	mu     sync.RWMutex   // districtlint:lockio
	blocks []*block.Block // ascending cut order
	nextID uint64
}

// manifestPrefix marks the snapshot record that carries the block
// manifest. The prefix cannot open a valid rows record: its first byte
// decodes as row count 0x52, after which the next byte must be flag
// 0x01, never 'B' — so legacy snapshots (no manifest) and manifest
// snapshots are unambiguous.
var manifestPrefix = []byte("RBMF1")

type blockManifest struct {
	Blocks []string `json:"blocks"`
}

func encodeManifest(names []string) []byte {
	raw, _ := json.Marshal(blockManifest{Blocks: names})
	return append(append([]byte{}, manifestPrefix...), raw...)
}

// decodeManifest parses a snapshot record as a manifest; ok=false means
// the record is a plain rows record (legacy snapshot or head rows).
func decodeManifest(p []byte) (names []string, ok bool, err error) {
	if len(p) < len(manifestPrefix) || string(p[:len(manifestPrefix)]) != string(manifestPrefix) {
		return nil, false, nil
	}
	var m blockManifest
	if err := json.Unmarshal(p[len(manifestPrefix):], &m); err != nil {
		return nil, true, fmt.Errorf("tsdb: corrupt block manifest: %w", err)
	}
	return m.Blocks, true, nil
}

// BlockFiles reports the block file names the latest snapshot manifest
// of a shard directory references, without opening a live engine. A
// directory with no snapshot (or a pre-block snapshot) has none.
func BlockFiles(dir string) ([]string, error) {
	_, sr, err := wal.LatestSnapshot(dir)
	if err != nil || sr == nil {
		return nil, err
	}
	rec, err := sr.Record()
	if errors.Is(err, io.EOF) {
		err, rec = nil, nil
	}
	if err != nil {
		return nil, errors.Join(err, sr.Close())
	}
	names, _, err := decodeManifest(rec)
	return names, errors.Join(err, sr.Close())
}

func blockPath(dir, name string) string { return filepath.Join(dir, name) }

func blockName(id uint64) string { return fmt.Sprintf("%016x%s", id, block.Suffix) }

func parseBlockName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, block.Suffix) {
		return 0, false
	}
	id, err := strconv.ParseUint(strings.TrimSuffix(name, block.Suffix), 16, 64)
	return id, err == nil
}

// openManifestBlocks opens the manifest-listed blocks of a shard dir
// and deletes every other *.blk file (orphans of a crash between block
// write and snapshot write — their rows are still in the WAL and replay
// into the head).
func openManifestBlocks(dir string, names []string) ([]*block.Block, uint64, error) {
	listed := make(map[string]bool, len(names))
	for _, n := range names {
		listed[n] = true
	}
	var nextID uint64 = 1
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, block.Suffix+".tmp") {
				_ = os.Remove(blockPath(dir, name))
				continue
			}
			id, ok := parseBlockName(name)
			if !ok {
				continue
			}
			if !listed[name] {
				_ = os.Remove(blockPath(dir, name))
				continue
			}
			if id >= nextID {
				nextID = id + 1
			}
		}
	}
	blocks := make([]*block.Block, 0, len(names))
	for _, name := range names {
		b, err := block.Open(blockPath(dir, name))
		if err != nil {
			for _, ob := range blocks {
				err = errors.Join(err, ob.Close())
			}
			return nil, 0, fmt.Errorf("tsdb: open block %s: %w", name, err)
		}
		blocks = append(blocks, b)
	}
	return blocks, nextID, nil
}

func bk(key SeriesKey) block.Key {
	return block.Key{Device: key.Device, Quantity: key.Quantity}
}

// ---------------------------------------------------------------------
// Compaction (runs on the shard worker — the shard's single writer)
// ---------------------------------------------------------------------

// compactShard is the unified snapshot+compaction step of a durable
// shard: cut head rows older than the head window into a new block,
// demote/delete blocks past their retention horizons, write the
// manifest-bearing snapshot at the WAL watermark, atomically publish
// the new view while evicting the cut rows from the head, then truncate
// the WAL and remove replaced files. Any failure before the snapshot
// leaves the previous view fully intact (new files are unlinked; the
// WAL still covers everything).
func (s *Sharded) compactShard(store *Store, disk *shardDisk, bs *blockSet) error {
	start := time.Now()
	var boundary time.Time
	if hw := s.blockPolicy.headWindow(); hw > 0 {
		boundary = start.Add(-hw)
	}

	var cut map[SeriesKey][]Sample
	if !boundary.IsZero() {
		cut = store.collectBefore(boundary)
	}

	// Only the worker mutates bs.blocks, so reading the slice without
	// the lock is safe on this goroutine.
	old := bs.blocks

	var rawHorizon, rollupHorizon time.Time
	if d := s.blockPolicy.RetentionRaw; d > 0 {
		rawHorizon = start.Add(-d)
	}
	if d := s.blockPolicy.RetentionRollup; d > 0 {
		rollupHorizon = start.Add(-d)
	}

	var written []string       // files created this cycle, unlinked on failure
	var opened []*block.Block  // blocks opened this cycle, closed on failure
	var removed []*block.Block // old blocks leaving the view, deleted on success
	next := make([]*block.Block, 0, len(old)+1)
	fail := func(err error) error {
		for _, b := range opened {
			_ = b.Close()
		}
		for _, p := range written {
			_ = os.Remove(p)
		}
		return err
	}

	for _, b := range old {
		switch {
		case !rollupHorizon.IsZero() && b.MaxT() < rollupHorizon.UnixNano():
			removed = append(removed, b)
		case !rawHorizon.IsZero() && b.MaxT() < rawHorizon.UnixNano() && blockHasRaw(b):
			nb, path, err := demoteBlock(bs, b)
			if err != nil {
				// Keep the original this cycle; retry next cadence.
				next = append(next, b)
				continue
			}
			written = append(written, path)
			opened = append(opened, nb)
			next = append(next, nb)
			removed = append(removed, b)
		default:
			next = append(next, b)
		}
	}

	// Cut the new block from the head.
	if len(cut) > 0 {
		keys := make([]SeriesKey, 0, len(cut))
		for k := range cut {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Device != keys[j].Device {
				return keys[i].Device < keys[j].Device
			}
			return keys[i].Quantity < keys[j].Quantity
		})
		path := blockPath(bs.dir, blockName(bs.nextID))
		w, err := block.NewWriter(path)
		if err != nil {
			return fail(err)
		}
		var pts []block.Point
		for _, k := range keys {
			pts = pts[:0]
			for _, smp := range cut[k] {
				pts = append(pts, block.Point{T: smp.At.UnixNano(), V: smp.Value})
			}
			if err := w.Add(bk(k), pts); err != nil {
				w.Abort()
				return fail(err)
			}
		}
		if _, _, err := w.Finish(); err != nil {
			return fail(err)
		}
		bs.nextID++
		written = append(written, path)
		nb, err := block.Open(path)
		if err != nil {
			return fail(err)
		}
		opened = append(opened, nb)
		next = append(next, nb)
	}

	// Durable point of no return: the snapshot names the new view and
	// carries the head rows at/after the boundary.
	names := make([]string, 0, len(next))
	for _, b := range next {
		names = append(names, filepath.Base(b.Path()))
	}
	seq := disk.log.LastSeq()
	if err := writeHeadSnapshot(store, disk.dir, seq, names, boundary); err != nil {
		return fail(err)
	}

	// Publish the new view and evict the cut rows in one write-locked
	// swap: a reader sees either head-with-old-rows + old blocks, or
	// head-without + new blocks — never both or neither.
	bs.mu.Lock()
	bs.blocks = next
	if !boundary.IsZero() && len(cut) > 0 {
		store.evictBefore(boundary)
	}
	bs.mu.Unlock()

	_ = disk.log.TruncateBefore(seq + 1)
	wal.RemoveSnapshotsBefore(disk.dir, seq)
	for _, b := range removed {
		path := b.Path()
		// Drop the set's reference; in-flight readers that retained the
		// block keep the mapping alive until their Release.
		_ = b.Close() //lint:ignore closecheck munmap of a replaced read-only block; readers hold their own refs
		_ = os.Remove(path)
	}
	disk.sinceSnap.Store(0)
	if disk.mx != nil {
		disk.mx.snapDur.ObserveDuration(time.Since(start))
		if disk.mx.compactDur != nil {
			disk.mx.compactDur.ObserveDuration(time.Since(start))
		}
	}
	return nil
}

// blockHasRaw reports whether any series of the block still carries raw
// chunks.
func blockHasRaw(b *block.Block) bool {
	for _, m := range b.Series() {
		if m.HasRaw() {
			return true
		}
	}
	return false
}

// demoteBlock rewrites a block without its raw chunks (rollups and
// index aggregates survive) under a fresh name. The original stays
// published until the caller's snapshot + swap.
func demoteBlock(bs *blockSet, b *block.Block) (*block.Block, string, error) {
	path := blockPath(bs.dir, blockName(bs.nextID))
	w, err := block.NewWriter(path)
	if err != nil {
		return nil, "", err
	}
	for _, m := range b.Series() {
		r1m, err := b.Rollup(m.Key, block.Res1m)
		if err != nil {
			w.Abort()
			return nil, "", err
		}
		r1h, err := b.Rollup(m.Key, block.Res1h)
		if err != nil {
			w.Abort()
			return nil, "", err
		}
		if err := w.AddRollups(m, r1m, r1h); err != nil {
			w.Abort()
			return nil, "", err
		}
	}
	if _, _, err := w.Finish(); err != nil {
		return nil, "", err
	}
	bs.nextID++
	nb, err := block.Open(path)
	if err != nil {
		_ = os.Remove(path)
		return nil, "", err
	}
	return nb, path, nil
}

// writeHeadSnapshot writes the snapshot of a block-bearing shard: the
// manifest record first, then every head row at/after boundary (all
// rows when boundary is zero).
func writeHeadSnapshot(store *Store, dir string, seq uint64, blockNames []string, boundary time.Time) error {
	return wal.WriteSnapshot(dir, seq, func(sw *wal.SnapshotWriter) error {
		if err := sw.Record(encodeManifest(blockNames)); err != nil {
			return err
		}
		rows := make([]Row, 0, snapshotChunk)
		var buf []byte
		flush := func() error {
			if len(rows) == 0 {
				return nil
			}
			buf = encodeRows(buf[:0], rows)
			rows = rows[:0]
			return sw.Record(buf)
		}
		for _, key := range store.Keys() {
			store.mu.RLock()
			sr := store.series[key]
			store.mu.RUnlock()
			if sr == nil {
				continue
			}
			sr.mu.Lock()
			if len(sr.spill) > 0 {
				sr.foldSpill()
			}
			samples := sr.flatten()
			sr.mu.Unlock()
			for _, smp := range samples {
				if !boundary.IsZero() && smp.At.Before(boundary) {
					continue
				}
				rows = append(rows, Row{Key: key, Sample: smp})
				if len(rows) == snapshotChunk {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		return flush()
	})
}

// dropSeries removes a series from a block-bearing shard: head drop
// plus a rewrite of every block containing the key, anchored by a fresh
// snapshot. Runs on the shard worker.
func (s *Sharded) dropSeries(store *Store, disk *shardDisk, bs *blockSet, key SeriesKey) error {
	store.Drop(key)
	target := bk(key)
	touched := false
	for _, b := range bs.blocks {
		if _, ok := b.Meta(target); ok {
			touched = true
			break
		}
	}
	if !touched {
		return nil
	}
	old := bs.blocks
	next := make([]*block.Block, 0, len(old))
	var written []string
	var opened []*block.Block
	var removed []*block.Block
	fail := func(err error) error {
		for _, b := range opened {
			_ = b.Close()
		}
		for _, p := range written {
			_ = os.Remove(p)
		}
		return err
	}
	for _, b := range old {
		if _, ok := b.Meta(target); !ok {
			next = append(next, b)
			continue
		}
		if len(b.Series()) == 1 {
			removed = append(removed, b)
			continue
		}
		nb, path, err := rewriteWithout(bs, b, target)
		if err != nil {
			return fail(err)
		}
		written = append(written, path)
		opened = append(opened, nb)
		next = append(next, nb)
		removed = append(removed, b)
	}
	names := make([]string, 0, len(next))
	for _, b := range next {
		names = append(names, filepath.Base(b.Path()))
	}
	seq := disk.log.LastSeq()
	if err := writeHeadSnapshot(store, disk.dir, seq, names, time.Time{}); err != nil {
		return fail(err)
	}
	bs.mu.Lock()
	bs.blocks = next
	bs.mu.Unlock()
	_ = disk.log.TruncateBefore(seq + 1)
	wal.RemoveSnapshotsBefore(disk.dir, seq)
	for _, b := range removed {
		path := b.Path()
		_ = b.Close() //lint:ignore closecheck munmap of a replaced read-only block; readers hold their own refs
		_ = os.Remove(path)
	}
	disk.sinceSnap.Store(0)
	disk.lastSnap.Store(time.Now().UnixNano())
	return nil
}

// rewriteWithout copies a block minus one series under a fresh name.
func rewriteWithout(bs *blockSet, b *block.Block, drop block.Key) (*block.Block, string, error) {
	path := blockPath(bs.dir, blockName(bs.nextID))
	w, err := block.NewWriter(path)
	if err != nil {
		return nil, "", err
	}
	var pts []block.Point
	for _, m := range b.Series() {
		if m.Key == drop {
			continue
		}
		if m.HasRaw() {
			pts = pts[:0]
			pts, err = b.Points(pts, m.Key, m.MinT, m.MaxT)
			if err == nil {
				err = w.Add(m.Key, pts)
			}
		} else {
			var r1m, r1h []block.Bucket
			if r1m, err = b.Rollup(m.Key, block.Res1m); err == nil {
				if r1h, err = b.Rollup(m.Key, block.Res1h); err == nil {
					err = w.AddRollups(m, r1m, r1h)
				}
			}
		}
		if err != nil {
			w.Abort()
			return nil, "", err
		}
	}
	if _, _, err := w.Finish(); err != nil {
		return nil, "", err
	}
	bs.nextID++
	nb, err := block.Open(path)
	if err != nil {
		_ = os.Remove(path)
		return nil, "", err
	}
	return nb, path, nil
}

// clear closes and deletes every block of the set (shard reset). Caller
// must be the shard worker; the snapshot anchoring the empty view must
// already be durable.
func (bs *blockSet) clear() {
	bs.mu.Lock()
	old := bs.blocks
	bs.blocks = nil
	bs.mu.Unlock()
	for _, b := range old {
		path := b.Path()
		_ = b.Close() //lint:ignore closecheck munmap of a removed read-only block; readers hold their own refs
		_ = os.Remove(path)
	}
}

// importBlocks copies the manifest-listed block files of srcDir into
// the shard under fresh names, opens and publishes them, and anchors
// the new view with a snapshot. The cluster restore path uses it so
// blocks (including rollup-only ones whose raw rows no longer exist)
// ship wholesale instead of being re-journaled row by row.
func (s *Sharded) importBlocks(store *Store, disk *shardDisk, bs *blockSet, srcDir string) error {
	names, err := BlockFiles(srcDir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return nil
	}
	var added []*block.Block
	var written []string
	fail := func(err error) error {
		for _, b := range added {
			_ = b.Close()
		}
		for _, p := range written {
			_ = os.Remove(p)
		}
		return err
	}
	for _, name := range names {
		dst := blockPath(bs.dir, blockName(bs.nextID))
		if err := copyFileSync(blockPath(srcDir, name), dst); err != nil {
			return fail(err)
		}
		bs.nextID++
		written = append(written, dst)
		b, err := block.Open(dst)
		if err != nil {
			return fail(err)
		}
		added = append(added, b)
	}
	// Imported blocks are older than anything local, so they go first
	// in cut order.
	next := append(added, bs.blocks...)
	manifest := make([]string, 0, len(next))
	for _, b := range next {
		manifest = append(manifest, filepath.Base(b.Path()))
	}
	seq := disk.log.LastSeq()
	if err := writeHeadSnapshot(store, disk.dir, seq, manifest, time.Time{}); err != nil {
		return fail(err)
	}
	bs.mu.Lock()
	bs.blocks = next
	bs.mu.Unlock()
	_ = disk.log.TruncateBefore(seq + 1)
	wal.RemoveSnapshotsBefore(disk.dir, seq)
	disk.lastSnap.Store(time.Now().UnixNano())
	return nil
}

func copyFileSync(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return errors.Join(err, in.Close())
	}
	_, err = io.Copy(out, in)
	err = errors.Join(err, in.Close())
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(dst)
		return err
	}
	return nil
}
