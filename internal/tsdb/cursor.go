package tsdb

import "time"

// DefaultPageLimit bounds a QueryPage when the caller passes limit <= 0.
const DefaultPageLimit = 1000

// Cursor is a resume position inside one series range scan. It is
// value-based, not offset-based: it records the timestamp of the last
// returned sample plus how many samples with exactly that timestamp have
// already been returned, so it stays valid when the store mutates
// between pages (old samples evicted, new ones appended or spilled in).
// The zero Cursor starts at the beginning of the range.
type Cursor struct {
	// After is the timestamp of the last sample already returned.
	After time.Time
	// Seen is how many samples with At == After were already returned
	// (several samples may share one timestamp).
	Seen int
}

// zero reports whether the cursor is the start-of-range marker.
func (c Cursor) zero() bool { return c.After.IsZero() }

// Page is one bounded slice of a series range scan.
type Page struct {
	// Samples are the page's samples in ascending time order.
	Samples []Sample
	// Next resumes the scan after the last sample of this page; only
	// meaningful when More is true.
	Next Cursor
	// More reports that the range holds samples beyond this page.
	More bool
}

// QueryPage returns one bounded page of the samples of a series with At
// in [from, to], resuming after cur. A zero `to` means "now"; limit <= 0
// means DefaultPageLimit. Unlike Query, the result is O(limit) in memory
// regardless of the range size, so arbitrarily large ranges can be
// walked page by page without ever materializing the whole range.
func (s *Store) QueryPage(key SeriesKey, from, to time.Time, cur Cursor, limit int) (Page, error) {
	if to.IsZero() {
		to = time.Now()
	}
	if to.Before(from) {
		return Page{}, ErrBadInterval
	}
	if limit <= 0 {
		limit = DefaultPageLimit
	}
	s.mu.RLock()
	sr := s.series[key]
	s.mu.RUnlock()
	if sr == nil {
		return Page{}, ErrNoSeries
	}

	// Resume position: scan from the cursor timestamp (skipping the
	// samples at that exact timestamp already returned) or from `from`.
	start, skip := from, 0
	if !cur.zero() && !cur.After.Before(from) {
		start, skip = cur.After, cur.Seen
	}
	if start.After(to) {
		return Page{}, nil
	}

	sr.mu.Lock()
	defer sr.mu.Unlock()
	if len(sr.spill) > 0 {
		sr.foldSpill()
	}
	// Collect limit+1 samples to learn whether the range continues.
	page := Page{Samples: make([]Sample, 0, min(limit, 4096))}
	for _, seg := range sr.segments {
		n := len(seg.samples)
		if n == 0 || seg.samples[n-1].At.Before(start) {
			continue
		}
		if seg.samples[0].At.After(to) {
			break
		}
		lo := searchSamples(seg.samples, func(smp Sample) bool { return !smp.At.Before(start) })
		hi := searchSamples(seg.samples, func(smp Sample) bool { return smp.At.After(to) })
		for _, smp := range seg.samples[lo:hi] {
			// Only samples at the exact cursor timestamp are skipped:
			// if some were evicted meanwhile, later samples must not
			// be swallowed by a stale skip count.
			if skip > 0 && smp.At.Equal(start) {
				skip--
				continue
			}
			page.Samples = append(page.Samples, smp)
			if len(page.Samples) > limit {
				break
			}
		}
		if len(page.Samples) > limit {
			break
		}
	}
	if len(page.Samples) > limit {
		page.Samples = page.Samples[:limit]
		page.More = true
	}
	if n := len(page.Samples); n > 0 && page.More {
		last := page.Samples[n-1].At
		seen := 0
		for i := n - 1; i >= 0 && page.Samples[i].At.Equal(last); i-- {
			seen++
		}
		if !cur.zero() && last.Equal(cur.After) {
			seen += cur.Seen
		}
		page.Next = Cursor{After: last, Seen: seen}
	}
	return page, nil
}

// searchSamples is sort.Search specialised to a sample slice.
func searchSamples(samples []Sample, f func(Sample) bool) int {
	lo, hi := 0, len(samples)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f(samples[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// pager serves bounded pages of one series range scan. The Store is
// one implementation; a durable Sharded shard with block files is
// another (its pages merge the in-memory head with the on-disk blocks).
// The Iterator works against either.
type pager interface {
	QueryPage(key SeriesKey, from, to time.Time, cur Cursor, limit int) (Page, error)
}

// Iterator walks one series range in bounded pages: memory stays
// O(page size) however large the range is. The store may mutate between
// pages; the value-based cursor keeps the walk gap- and duplicate-free
// with respect to the samples that remain stored.
type Iterator struct {
	p        pager
	key      SeriesKey
	from, to time.Time
	pageSize int

	page    Page
	i       int
	started bool
	done    bool
	err     error
}

// Iter returns an iterator over the samples of a series with At in
// [from, to]. A zero `to` pins the upper bound to "now" once, so the
// walk is stable while the series keeps growing. pageSize <= 0 means
// DefaultPageLimit.
func (s *Store) Iter(key SeriesKey, from, to time.Time, pageSize int) *Iterator {
	return iterPager(s, key, from, to, pageSize)
}

// iterPager builds an Iterator over any pager.
func iterPager(p pager, key SeriesKey, from, to time.Time, pageSize int) *Iterator {
	if to.IsZero() {
		to = time.Now()
	}
	if pageSize <= 0 {
		pageSize = DefaultPageLimit
	}
	return &Iterator{p: p, key: key, from: from, to: to, pageSize: pageSize}
}

// StartAt positions the iterator to resume after cur (e.g. a cursor a
// paginated API echoed back). It must be called before the first Next.
func (it *Iterator) StartAt(cur Cursor) *Iterator {
	it.page.Next = cur
	return it
}

// Next returns the next sample, advancing the iterator. It reports false
// when the range is exhausted or an error occurred (check Err).
func (it *Iterator) Next() (Sample, bool) {
	for {
		if it.err != nil || it.done {
			return Sample{}, false
		}
		if it.i < len(it.page.Samples) {
			smp := it.page.Samples[it.i]
			it.i++
			return smp, true
		}
		if it.started && !it.page.More {
			it.done = true
			return Sample{}, false
		}
		page, err := it.p.QueryPage(it.key, it.from, it.to, it.page.Next, it.pageSize)
		if err != nil {
			it.err = err
			return Sample{}, false
		}
		it.started = true
		it.page = page
		it.i = 0
		if len(page.Samples) == 0 && !page.More {
			it.done = true
			return Sample{}, false
		}
	}
}

// Err returns the error that stopped the iterator, if any.
func (it *Iterator) Err() error { return it.err }
