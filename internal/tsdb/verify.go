package tsdb

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/block"
	"repro/internal/wal"
)

// ShardVerifyResult summarizes a read-only integrity check of one shard
// directory: WAL segments, snapshots, and the manifest-listed block
// files.
type ShardVerifyResult struct {
	Dir string           `json:"dir"`
	WAL wal.VerifyResult `json:"wal"`
	// Blocks, BlockBytes, and BlockSamples cover the manifest-listed
	// block files, every frame of which decoded clean.
	Blocks       int   `json:"blocks"`
	BlockBytes   int64 `json:"block_bytes,omitempty"`
	BlockSamples int64 `json:"block_samples,omitempty"`
	// OrphanBlocks are .blk files in the directory the manifest does not
	// list — crash artefacts the next recovery deletes. Reported, not an
	// error: their rows are still covered by the untruncated WAL.
	OrphanBlocks []string `json:"orphan_blocks,omitempty"`
}

// VerifyShardDir CRC-checks one shard directory in place without
// opening a live engine or modifying anything: every WAL segment and
// snapshot record, and every frame (raw chunks, rollups, index) of
// every manifest-listed block file. Verifying a directory a live
// engine is writing to may report transient torn tails; archived or
// cold copies verify exactly.
func VerifyShardDir(dir string) (ShardVerifyResult, error) {
	res := ShardVerifyResult{Dir: dir}
	var err error
	res.WAL, err = wal.VerifyDir(dir)
	if err != nil {
		return res, err
	}
	manifest, err := BlockFiles(dir)
	if err != nil {
		return res, fmt.Errorf("tsdb: block manifest: %w", err)
	}
	listed := make(map[string]bool, len(manifest))
	for _, name := range manifest {
		listed[name] = true
		b, err := block.Open(blockPath(dir, name))
		if err != nil {
			return res, err
		}
		verr := b.Verify()
		res.Blocks++
		res.BlockBytes += b.Size()
		res.BlockSamples += b.NumSamples()
		if cerr := b.Close(); verr == nil {
			verr = cerr
		}
		if verr != nil {
			return res, verr
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return res, fmt.Errorf("tsdb: %w", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), block.Suffix) && !listed[e.Name()] {
			res.OrphanBlocks = append(res.OrphanBlocks, e.Name())
		}
	}
	return res, nil
}

// VerifyDataDir verifies every shard-NNNN directory under an engine
// data dir (the tsdb directory OpenSharded was pointed at), or dir
// itself when it is a single shard directory.
func VerifyDataDir(dir string) ([]ShardVerifyResult, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	var out []ShardVerifyResult
	var verr error
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		res, err := VerifyShardDir(dir + "/" + e.Name())
		out = append(out, res)
		if err != nil {
			verr = errors.Join(verr, fmt.Errorf("%s: %w", e.Name(), err))
		}
	}
	if out == nil {
		res, err := VerifyShardDir(dir)
		return []ShardVerifyResult{res}, err
	}
	return out, verr
}
