package tsdb

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/wal"
)

var durT0 = time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC)

// durRows builds n rows spread over several devices, with per-series
// ascending timestamps.
func durRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		dev := []string{"urn:district:turin/building:b01/device:d0",
			"urn:district:turin/building:b02/device:d1",
			"urn:district:turin/building:b03/device:d2"}[i%3]
		rows[i] = Row{
			Key:    SeriesKey{Device: dev, Quantity: "temperature"},
			Sample: Sample{At: durT0.Add(time.Duration(i) * time.Second), Value: float64(i) + 0.5},
		}
	}
	return rows
}

func openDurable(t *testing.T, dir string, opts ShardedOptions) *Sharded {
	t.Helper()
	opts.Dir = dir
	eng, err := OpenSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// assertSameContent verifies two engines hold identical samples for the
// given keys.
func assertSameContent(t *testing.T, want, got Engine, keys []SeriesKey) {
	t.Helper()
	for _, k := range keys {
		a, errA := want.Query(k, time.Time{}, durT0.Add(time.Hour))
		b, errB := got.Query(k, time.Time{}, durT0.Add(time.Hour))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%v: err %v vs %v", k, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: %d vs %d samples (or differing content)", k, len(a), len(b))
		}
	}
}

func TestDurableRecoveryAfterClose(t *testing.T) {
	dir := t.TempDir()
	rows := durRows(500)
	eng := openDurable(t, dir, ShardedOptions{Shards: 4})
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	keys := eng.Keys()
	wantStats := eng.Stats()
	eng.Close()

	re := openDurable(t, dir, ShardedOptions{Shards: 4})
	defer re.Close()
	if got := re.Stats(); got.Samples != wantStats.Samples || got.Series != wantStats.Series {
		t.Fatalf("recovered stats = %+v, want %+v", got, wantStats)
	}
	mem := New(Options{})
	for _, r := range rows {
		_ = mem.Append(r.Key, r.Sample)
	}
	assertSameContent(t, mem, re, keys)
}

func TestDurableRecoveryAfterKill(t *testing.T) {
	// No Close: the engine is abandoned the way a SIGKILL leaves it.
	// Every append was write(2)-flushed before acking, so even in fsync
	// mode none the rows survive the process (not machine) death.
	dir := t.TempDir()
	rows := durRows(300)
	eng := openDurable(t, dir, ShardedOptions{Shards: 2, Fsync: wal.FsyncAlways})
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	want := eng.Stats()

	re := openDurable(t, dir, ShardedOptions{Shards: 2, Fsync: wal.FsyncAlways})
	defer re.Close()
	if got := re.Stats(); got.Samples != want.Samples {
		t.Fatalf("recovered %d samples, want %d", got.Samples, want.Samples)
	}
}

func TestDurableTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	eng := openDurable(t, dir, ShardedOptions{Shards: 1})
	rows := durRows(100)
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	eng.Close()

	// A kill mid-append leaves a torn frame at the tail of the shard's
	// WAL; recovery must keep every whole record and drop the tear.
	segs, err := filepath.Glob(filepath.Join(dir, "shard-0000", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x03, 0x00, 0x00, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openDurable(t, dir, ShardedOptions{Shards: 1})
	defer re.Close()
	if got := re.Stats().Samples; got != 100 {
		t.Fatalf("recovered %d samples, want 100", got)
	}
	// And the log keeps working after the truncation.
	if err := re.Append(rows[0].Key, Sample{At: durT0.Add(time.Hour), Value: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestDurableSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	eng := openDurable(t, dir, ShardedOptions{
		Shards:        1,
		SnapshotEvery: 100,
		SegmentBytes:  1 << 10,
	})
	for i := 0; i < 10; i++ {
		if errs := eng.AppendBatch(durRows(100)[i*10 : i*10+10]); errs != nil {
			t.Fatalf("append: %v", errs)
		}
	}
	// Push enough rows through to cross the snapshot cadence repeatedly.
	rows := durRows(1000)
	for i := 0; i < 10; i++ {
		if errs := eng.AppendBatch(rows[i*100 : (i+1)*100]); errs != nil {
			t.Fatalf("append: %v", errs)
		}
	}
	want := eng.Stats()
	eng.Close()

	shardDir := filepath.Join(dir, "shard-0000")
	snaps, _ := filepath.Glob(filepath.Join(shardDir, "*.snap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot written")
	}
	if len(snaps) > 1 {
		t.Fatalf("old snapshots not pruned: %v", snaps)
	}
	segs, _ := filepath.Glob(filepath.Join(shardDir, "*.seg"))
	// 1100 rows at ~17 bytes each over 1 KiB segments would be ~19
	// segments without compaction; the truncation must have removed the
	// bulk of them.
	if len(segs) > 6 {
		t.Fatalf("WAL not compacted: %d segments", len(segs))
	}

	re := openDurable(t, dir, ShardedOptions{Shards: 1, SnapshotEvery: 100, SegmentBytes: 1 << 10})
	defer re.Close()
	if got := re.Stats(); got.Samples != want.Samples || got.Series != want.Series {
		t.Fatalf("recovered stats = %+v, want %+v", got, want)
	}
}

func TestDurableShardCountAdopted(t *testing.T) {
	dir := t.TempDir()
	eng := openDurable(t, dir, ShardedOptions{Shards: 4})
	rows := durRows(60)
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	eng.Close()

	// Reopening with a different shard count must adopt the on-disk
	// layout — rows are placed by device-hash % shards.
	re := openDurable(t, dir, ShardedOptions{Shards: 8})
	defer re.Close()
	if got := re.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want the created 4", got)
	}
	if got := re.Stats().Samples; got != 60 {
		t.Fatalf("recovered %d samples, want 60", got)
	}
}

func TestDurableSynchronousAppendJournaled(t *testing.T) {
	dir := t.TempDir()
	key := SeriesKey{Device: "urn:district:turin/building:b09/device:x", Quantity: "humidity"}
	eng := openDurable(t, dir, ShardedOptions{Shards: 2})
	if err := eng.Append(key, Sample{At: durT0, Value: 42}); err != nil {
		t.Fatal(err)
	}
	// Abandoned without Close: the synchronous Append must already be in
	// the WAL when it returned.
	re := openDurable(t, dir, ShardedOptions{Shards: 2})
	defer re.Close()
	smp, err := re.Latest(key)
	if err != nil || smp.Value != 42 {
		t.Fatalf("latest = %+v, %v", smp, err)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{Key: SeriesKey{Device: "d1", Quantity: "temperature"}, Sample: Sample{At: durT0, Value: 1.25}},
		{Key: SeriesKey{Device: "d1", Quantity: "temperature"}, Sample: Sample{At: durT0.Add(time.Second), Value: -3}},
		{Key: SeriesKey{Device: "d2", Quantity: "humidity"}, Sample: Sample{At: durT0.Add(2 * time.Second), Value: math.MaxFloat64}},
		{Key: SeriesKey{Device: "", Quantity: ""}, Sample: Sample{At: durT0, Value: 0}},
	}
	enc := encodeRows(nil, rows)
	dec, err := decodeRows(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, dec) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", rows, dec)
	}
	// Truncated records must error, not panic or fabricate rows.
	for cut := 1; cut < len(enc); cut += 3 {
		if _, err := decodeRows(enc[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
}
