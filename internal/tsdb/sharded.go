package tsdb

import (
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// Engine is the storage surface the measurements services program
// against: the single-lock Store implements it, and so does the
// device-hash Sharded engine that partitions the key space for
// write-parallel ingest. Readers and writers address series by key;
// which shard (if any) owns a series is the engine's business.
type Engine interface {
	Append(key SeriesKey, smp Sample) error
	AppendBatch(rows []Row) []error
	Query(key SeriesKey, from, to time.Time) ([]Sample, error)
	QueryPage(key SeriesKey, from, to time.Time, cur Cursor, limit int) (Page, error)
	Iter(key SeriesKey, from, to time.Time, pageSize int) *Iterator
	Latest(key SeriesKey) (Sample, error)
	Len(key SeriesKey) int
	Keys() []SeriesKey
	KeysForDevice(device string) []SeriesKey
	Aggregate(key SeriesKey, from, to time.Time) (Aggregate, error)
	Downsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Bucket, error)
	Stats() Stats
	Drop(key SeriesKey)
	Close()
}

var (
	_ Engine = (*Store)(nil)
	_ Engine = (*Sharded)(nil)
)

// Row is one keyed sample, the unit of batched ingest.
type Row struct {
	Key    SeriesKey
	Sample Sample
}

// AppendBatch appends rows in order, coalescing consecutive rows of the
// same series into one locked run: batched producers (device buffers,
// NDJSON backfills, the ingest chunker) pay the map lookup and the
// series lock once per run instead of once per sample. The returned
// slice is aligned with rows — errs[i] is rows[i]'s failure — and nil
// when every row landed.
func (s *Store) AppendBatch(rows []Row) []error {
	var errs []error
	for j := 0; j < len(rows); {
		k := j + 1
		for k < len(rows) && rows[k].Key == rows[j].Key {
			k++
		}
		if err := s.appendRun(rows[j].Key, rows[j:k]); err != nil {
			if errs == nil {
				errs = make([]error, len(rows))
			}
			for m := j; m < k; m++ {
				errs[m] = err
			}
		}
		j = k
	}
	return errs
}

// DefaultShards is the shard count a zero ShardedOptions gets.
const DefaultShards = 8

// defaultQueueLen is the per-shard append-queue capacity, in batches.
const defaultQueueLen = 256

// ShardedOptions configure a Sharded engine.
type ShardedOptions struct {
	// Shards is the number of device-hash partitions (default
	// DefaultShards). All of a device's series land in one shard, so
	// per-series ordering and cursor semantics are exactly the Store's.
	Shards int
	// Store configures each shard's underlying Store.
	Store Options
	// QueueLen is the per-shard append-queue capacity in batches
	// (default 256). Enqueue blocks when a shard's queue is full, which
	// back-pressures producers instead of growing memory.
	QueueLen int

	// Dir enables the durable layer: every shard journals its row
	// batches through a segmented write-ahead log under
	// <Dir>/shard-NNNN before acking, and compacts the log into
	// snapshots. Empty keeps the engine purely in-memory. The shard
	// count is pinned in <Dir>/engine.json at creation; reopening adopts
	// the stored count (rows are placed by device-hash % shards).
	Dir string
	// Fsync is the WAL durability policy (default wal.FsyncNone: acked
	// rows survive a process kill, an fsync policy decides what a
	// machine crash can lose).
	Fsync wal.Mode
	// SyncEvery is the wal.FsyncInterval background sync period
	// (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes sizes the WAL segments (default 8 MiB).
	SegmentBytes int64
	// SnapshotEvery compacts a shard's WAL into a snapshot after this
	// many appended rows (default 65536; negative disables record-based
	// snapshots).
	SnapshotEvery int
	// SnapshotInterval also cuts a snapshot when the last one is older
	// than this (checked on append activity; 0 disables).
	SnapshotInterval time.Duration
	// Blocks configures the columnar block layer of a durable engine:
	// at snapshot cadence each shard cuts head rows older than the head
	// window into compressed immutable block files with 1m/1h rollups,
	// and applies the raw/rollup retention horizons. Only meaningful
	// with Dir set; the zero value means DefaultHeadWindow and infinite
	// retention.
	Blocks BlockPolicy

	// Metrics, when set, registers the engine's internals on the given
	// registry: per-shard WAL append/fsync latency histograms, WAL
	// depth and segment gauges, snapshot age/duration, queue depth, and
	// the commit-group row distribution. Nil disables instrumentation
	// (the hot path then takes no timestamps).
	Metrics *obs.Registry
}

// Sharded is a device-hash-partitioned storage engine: N independent
// Stores, each owning the series of the devices that hash to it, plus a
// single-writer append queue per shard. Reads route to the owning shard
// and behave exactly like a Store (same value-based cursors, same
// iterator); batched writes are split by shard and applied by the
// per-shard workers in parallel, so ingest throughput scales with the
// shard count instead of funnelling through one lock.
type Sharded struct {
	shards []*Store
	queues []chan batchItem

	// disks is the per-shard durable state (nil for in-memory engines);
	// after recovery only each shard's worker touches its entry.
	disks []*shardDisk
	// bsets is the per-shard published block view (nil for in-memory
	// engines); workers mutate, readers capture under its read lock.
	bsets        []*blockSet
	blockPolicy  BlockPolicy
	snapEvery    int
	snapInterval time.Duration
	// dropped counts fire-and-forget (Enqueue) rows a durable shard
	// discarded because their WAL append failed — the only queued-write
	// loss the engine can suffer, surfaced in Stats.
	dropped atomic.Uint64

	// groupRows is the commit-group size distribution (nil when the
	// engine is uninstrumented).
	groupRows *obs.Histogram

	// headReads/blockReads classify merged reads by whether any block
	// file was consulted (exposed as repro_tsdb_reads_total{path=...}).
	headReads  atomic.Uint64
	blockReads atomic.Uint64

	// gens is the per-shard mutation generation: bumped after every
	// applied append wave, every compaction/snapshot pass, and every
	// reset or admin op — always before the mutation's caller is
	// unblocked. Result caches snapshot it into their keys, so any shard
	// mutation implicitly invalidates cached reads over that shard while
	// read-your-writes stays exact.
	gens []atomic.Uint64

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	wg     sync.WaitGroup
}

// batchItem is one unit of work on a shard's append queue. rows are the
// shard's slice of a caller batch; idx maps them back to the caller's
// indices inside errs (both nil for fire-and-forget enqueues). done, when
// set, is signalled after the rows are applied. stages, when set,
// receives the wal-append and store-apply wait times the originating
// request experienced (see AppendBatchStages).
type batchItem struct {
	rows   []Row
	idx    []int
	errs   []error
	done   *sync.WaitGroup
	stages *obs.Stages
	// reset, when set, marks a shard-reset request: the worker empties
	// the shard (store + durable state) and sends the outcome. Reset
	// items never join a commit group — everything queued before one is
	// committed first, everything after it applies to the emptied shard.
	reset chan error
	// op, when set, is a queued admin operation (forced compaction,
	// block import, series drop). Like reset it never joins a commit
	// group: everything queued before it commits first.
	op *shardOp
	// release, when set, returns the item's row storage to its pool once
	// the worker is finished with it (applied, or dropped on a WAL
	// failure). Only the worker calls it, exactly once.
	release func()
}

// shardOp is one admin operation routed through a shard's worker so it
// runs with single-writer semantics against the store and blocks.
type shardOp struct {
	kind opKind
	dir  string    // opImport: source shard directory
	key  SeriesKey // opDrop: series to remove
	done chan error
}

type opKind int

const (
	opCompact opKind = iota
	opImport
	opDrop
)

// NewSharded creates a Sharded engine and starts its append workers.
// It can only fail when Options.Dir requests durability — use
// OpenSharded for that; NewSharded panics on a disk error.
func NewSharded(opts ShardedOptions) *Sharded {
	s, err := OpenSharded(opts)
	if err != nil {
		panic("tsdb: NewSharded: " + err.Error() + " (use OpenSharded for durable engines)")
	}
	return s
}

// OpenSharded creates a Sharded engine, recovering each shard from its
// snapshot and WAL tail when Options.Dir enables durability, and starts
// the append workers.
func OpenSharded(opts ShardedOptions) (*Sharded, error) {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	qlen := opts.QueueLen
	if qlen <= 0 {
		qlen = defaultQueueLen
	}
	if opts.Dir != "" {
		var err error
		if n, err = loadOrWriteMeta(opts.Dir, n); err != nil {
			return nil, err
		}
	}
	s := &Sharded{
		shards:       make([]*Store, n),
		queues:       make([]chan batchItem, n),
		gens:         make([]atomic.Uint64, n),
		snapEvery:    opts.SnapshotEvery,
		snapInterval: opts.SnapshotInterval,
	}
	if s.snapEvery == 0 {
		s.snapEvery = 1 << 16
	}
	for i := 0; i < n; i++ {
		s.shards[i] = New(opts.Store)
		s.queues[i] = make(chan batchItem, qlen)
	}
	reg := opts.Metrics
	if reg != nil {
		s.groupRows = reg.Histogram("repro_tsdb_commit_group_rows",
			"Rows covered by one shard commit group.", obs.CountBuckets, nil)
		reg.CounterFunc("repro_tsdb_dropped_rows_total",
			"Fire-and-forget rows dropped after a WAL append failure.", nil,
			func() float64 { return float64(s.dropped.Load()) })
		for i := 0; i < n; i++ {
			q := s.queues[i]
			g := &s.gens[i]
			shard := obs.Labels{"shard": strconv.Itoa(i)}
			reg.GaugeFunc("repro_tsdb_queue_depth",
				"Batches waiting on the shard append queue.",
				shard, func() float64 { return float64(len(q)) })
			reg.GaugeFunc("repro_tsdb_shard_generation",
				"Shard mutation generation: bumps on applied append waves, compaction passes, resets, and admin ops.",
				shard, func() float64 { return float64(g.Load()) })
		}
	}
	if opts.Dir != "" {
		s.disks = make([]*shardDisk, n)
		s.bsets = make([]*blockSet, n)
		s.blockPolicy = opts.Blocks
		fail := func(i int, err error) error {
			for _, d := range s.disks[:i] {
				err = errors.Join(err, d.log.Close())
			}
			for _, bs := range s.bsets[:i] {
				for _, b := range bs.blocks {
					err = errors.Join(err, b.Close())
				}
			}
			return err
		}
		for i := 0; i < n; i++ {
			var mx *shardMetrics
			var onSync func(time.Duration)
			if reg != nil {
				mx = newShardMetrics(reg, i)
				onSync = mx.fsync.ObserveDuration
			}
			disk, manifest, err := recoverShard(filepath.Join(opts.Dir, fmt.Sprintf("shard-%04d", i)), s.shards[i], opts, onSync)
			if err != nil {
				return nil, fail(i, fmt.Errorf("tsdb: recover shard %d: %w", i, err))
			}
			blocks, nextID, err := openManifestBlocks(disk.dir, manifest)
			if err != nil {
				return nil, fail(i, errors.Join(fmt.Errorf("tsdb: recover shard %d: %w", i, err), disk.log.Close()))
			}
			disk.mx = mx
			bs := &blockSet{dir: disk.dir, blocks: blocks, nextID: nextID}
			if reg != nil {
				d := disk
				shard := obs.Labels{"shard": strconv.Itoa(i)}
				reg.GaugeFunc("repro_tsdb_wal_pending_rows",
					"Rows journaled above the shard's snapshot watermark (WAL depth).",
					shard, func() float64 { return float64(d.sinceSnap.Load()) })
				reg.GaugeFunc("repro_tsdb_wal_segments",
					"Live WAL segment files of the shard.",
					shard, func() float64 { return float64(d.log.Segments()) })
				reg.GaugeFunc("repro_tsdb_snapshot_age_seconds",
					"Seconds since the shard's last snapshot cut (or recovery).",
					shard, func() float64 {
						return time.Since(time.Unix(0, d.lastSnap.Load())).Seconds()
					})
				reg.GaugeFunc("repro_tsdb_block_files",
					"Published columnar block files of the shard.",
					shard, func() float64 {
						bs.mu.RLock()
						defer bs.mu.RUnlock()
						return float64(len(bs.blocks))
					})
				reg.GaugeFunc("repro_tsdb_block_bytes",
					"On-disk bytes of the shard's published block files.",
					shard, func() float64 {
						bs.mu.RLock()
						defer bs.mu.RUnlock()
						var sum int64
						for _, b := range bs.blocks {
							sum += b.Size()
						}
						return float64(sum)
					})
				reg.GaugeFunc("repro_tsdb_block_rollup_lag_seconds",
					"Age of the newest block-covered sample — how far the rollup tier trails the head (0 until the first cut).",
					shard, func() float64 {
						bs.mu.RLock()
						defer bs.mu.RUnlock()
						var maxT int64
						for _, b := range bs.blocks {
							if b.MaxT() > maxT {
								maxT = b.MaxT()
							}
						}
						if maxT == 0 {
							return 0
						}
						return time.Since(time.Unix(0, maxT)).Seconds()
					})
			}
			s.disks[i] = disk
			s.bsets[i] = bs
		}
		if reg != nil {
			reg.CounterFunc("repro_tsdb_reads_total",
				"Merged reads by whether any block file was consulted.",
				obs.Labels{"path": "head"},
				func() float64 { return float64(s.headReads.Load()) })
			reg.CounterFunc("repro_tsdb_reads_total",
				"Merged reads by whether any block file was consulted.",
				obs.Labels{"path": "blocks"},
				func() float64 { return float64(s.blockReads.Load()) })
		}
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// Durable reports whether the engine journals its writes to disk.
func (s *Sharded) Durable() bool { return s.disks != nil }

// maxCommitGroup bounds how many queued batches one WAL group commit
// (and one store pass) covers.
const maxCommitGroup = 64

// worker drains one shard's append queue; it is the shard's only queued
// writer, so queued appends never contend with each other and ride the
// run-grouped batch path. Everything already queued behind the first
// item is committed as one group — on a durable shard that is the
// group-commit path: one WAL append (and one fsync, in always mode)
// covers the whole wave before any of it is acked.
func (s *Sharded) worker(i int) {
	defer s.wg.Done()
	store := s.shards[i]
	q := s.queues[i]
	var disk *shardDisk
	var bs *blockSet
	if s.disks != nil {
		disk = s.disks[i]
		bs = s.bsets[i]
	}
	group := make([]batchItem, 0, maxCommitGroup)
	for {
		item, ok := <-q
		if !ok {
			return
		}
		if item.reset != nil || item.op != nil {
			s.runBarrier(i, store, disk, bs, item)
			continue
		}
		group = append(group[:0], item)
		closed := false
		var pending *batchItem
	drain:
		for len(group) < maxCommitGroup {
			select {
			case it, ok := <-q:
				if !ok {
					closed = true
					break drain
				}
				if it.reset != nil || it.op != nil {
					// A reset or admin op must not ride a commit group:
					// rows queued behind it would be journaled before it
					// runs and then truncated/compacted by it. Commit
					// what came first, then run the barrier item.
					it := it
					pending = &it
					break drain
				}
				group = append(group, it)
			default:
				break drain
			}
		}
		s.commitGroup(i, store, disk, bs, group)
		if pending != nil {
			s.runBarrier(i, store, disk, bs, *pending)
		}
		if closed {
			return
		}
	}
}

// runBarrier executes a reset or admin-op queue item on the shard
// worker, outside any commit group. The shard generation bumps before
// the outcome is sent: the caller — and anyone it tells — can never
// observe a cached pre-op result after the op is acknowledged.
func (s *Sharded) runBarrier(i int, store *Store, disk *shardDisk, bs *blockSet, item batchItem) {
	if item.reset != nil {
		err := s.resetShard(store, disk, bs)
		s.gens[i].Add(1)
		item.reset <- err
		return
	}
	op := item.op
	var err error
	switch {
	case disk == nil:
		err = fmt.Errorf("tsdb: admin op requires a durable engine")
	case op.kind == opCompact:
		err = s.compactShard(store, disk, bs)
	case op.kind == opImport:
		err = s.importBlocks(store, disk, bs, op.dir)
	case op.kind == opDrop:
		err = s.dropSeries(store, disk, bs, op.key)
	}
	s.gens[i].Add(1)
	op.done <- err
}

// resetShard empties one shard: the in-memory store, and on a durable
// shard the WAL — an empty snapshot is cut at the current watermark and
// every segment and older snapshot below it is dropped, so a reopen
// recovers the shard as empty. Runs on the shard worker, never
// concurrently with an append.
func (s *Sharded) resetShard(store *Store, disk *shardDisk, bs *blockSet) error {
	store.Reset()
	if disk == nil {
		return nil
	}
	// An empty snapshot carries no manifest, which recovery reads as
	// "no blocks" — the durable statement that the block files are gone.
	seq := disk.log.LastSeq()
	if err := wal.WriteSnapshot(disk.dir, seq, func(*wal.SnapshotWriter) error { return nil }); err != nil {
		return err
	}
	if bs != nil {
		bs.clear()
	}
	if err := disk.log.TruncateBefore(seq + 1); err != nil {
		return err
	}
	wal.RemoveSnapshotsBefore(disk.dir, seq)
	disk.sinceSnap.Store(0)
	disk.lastSnap.Store(time.Now().UnixNano())
	return nil
}

// commitGroup journals, applies, and acks one wave of queue items, in
// that order: a row reaches the WAL (under the shard's fsync policy)
// before the in-memory store, and the store before its producer is
// unblocked. A WAL failure fails every row in the wave without applying
// any of them — the engine never acknowledges state it cannot recover.
func (s *Sharded) commitGroup(i int, store *Store, disk *shardDisk, bs *blockSet, group []batchItem) {
	if s.groupRows != nil {
		rows := 0
		for _, it := range group {
			rows += len(it.rows)
		}
		if rows > 0 {
			s.groupRows.Observe(float64(rows))
		}
	}
	if disk != nil {
		var recs [][]byte
		var buf []byte
		var bounds []int
		for _, it := range group {
			if len(it.rows) == 0 {
				continue
			}
			start := len(buf)
			buf = encodeRows(buf, it.rows)
			bounds = append(bounds, start, len(buf))
		}
		if len(bounds) > 0 {
			recs = make([][]byte, 0, len(bounds)/2)
			for j := 0; j < len(bounds); j += 2 {
				recs = append(recs, buf[bounds[j]:bounds[j+1]])
			}
			// The group commits as one WAL append, so the group's append
			// latency IS each member request's wal-append wait. Timing
			// only happens when someone is listening — the uninstrumented
			// hot path takes no timestamps.
			timed := disk.mx != nil || anyStages(group)
			var walStart time.Time
			if timed {
				walStart = time.Now()
			}
			_, err := disk.log.AppendBatch(recs)
			if timed {
				walD := time.Since(walStart)
				if disk.mx != nil {
					disk.mx.walAppend.ObserveDuration(walD)
				}
				for _, it := range group {
					it.stages.Observe("wal-append", walD)
				}
			}
			if err != nil {
				for _, it := range group {
					if it.errs != nil {
						for _, j := range it.idx {
							it.errs[j] = err
						}
					} else if len(it.rows) > 0 {
						// Fire-and-forget rows have no error slot to
						// fail into; count the loss so it is visible.
						s.dropped.Add(uint64(len(it.rows)))
					}
					if it.done != nil {
						it.done.Done()
					}
					if it.release != nil {
						it.release()
					}
				}
				return
			}
		}
	}
	for _, it := range group {
		if len(it.rows) > 0 {
			var applyStart time.Time
			if it.stages != nil {
				applyStart = time.Now()
			}
			errs := store.AppendBatch(it.rows)
			if it.stages != nil {
				it.stages.Observe("store-apply", time.Since(applyStart))
			}
			if errs != nil && it.errs != nil {
				for j, err := range errs {
					if err != nil {
						it.errs[it.idx[j]] = err
					}
				}
			}
			if disk != nil {
				disk.sinceSnap.Add(int64(len(it.rows)))
			}
			// Generation bump before the ack: a producer unblocked by
			// done.Done() re-reading its own write can never match a
			// cache entry keyed to the pre-append generation.
			s.gens[i].Add(1)
		}
		if it.done != nil {
			it.done.Done()
		}
		if it.release != nil {
			it.release()
		}
	}
	if disk != nil && s.maybeSnapshot(store, disk, bs) {
		// A snapshot pass on a block-bearing shard IS the compaction
		// cycle — head rows moved into blocks, retention applied. Bump so
		// cached merged reads over the pre-compaction view expire.
		s.gens[i].Add(1)
	}
}

// anyStages reports whether any item in the wave carries a stage
// collector.
func anyStages(group []batchItem) bool {
	for _, it := range group {
		if it.stages != nil {
			return true
		}
	}
	return false
}

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardGeneration reports shard i's mutation generation. It increases
// monotonically: after every applied append wave (before the producer is
// unblocked), every compaction/snapshot pass, and every reset or admin
// op. Two equal readings around a read guarantee the shard's visible
// data did not change in between — the contract result caches build on.
func (s *Sharded) ShardGeneration(i int) uint64 {
	return s.gens[i].Load()
}

// Generations appends every shard's current generation to buf and
// returns it, in shard order. A caching reader snapshots the set once
// per request instead of taking len(shards) separate calls.
func (s *Sharded) Generations(buf []uint64) []uint64 {
	for i := range s.gens {
		buf = append(buf, s.gens[i].Load())
	}
	return buf
}

// ShardFor reports which shard owns a device's series.
func (s *Sharded) ShardFor(device string) int {
	return ShardOf(device, len(s.shards))
}

// ShardOf is THE placement function: which of n shards owns a device's
// series (FNV-1a of the device URI mod n). The engine partitions rows
// with it and the cluster layer routes requests with it, so a row's
// owning node and its on-disk shard directory can never disagree.
func ShardOf(device string, n int) int {
	return int(fnv64a(device) % uint64(n))
}

// Shard exposes one shard's Store (scatter-gather planners fan reads
// over the shards directly).
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// ShardDir reports shard i's on-disk directory ("" on an in-memory
// engine). The cluster handoff archives the directory's files directly.
func (s *Sharded) ShardDir(i int) string {
	if s.disks == nil || i < 0 || i >= len(s.disks) {
		return ""
	}
	return s.disks[i].dir
}

// SyncShard waits for everything queued on shard i to be applied, then
// fsyncs its WAL so the shard's segment files are complete on disk. A
// frozen shard synced this way can be archived byte-for-byte.
func (s *Sharded) SyncShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("tsdb: shard %d out of range [0,%d)", i, len(s.shards))
	}
	var done sync.WaitGroup
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	done.Add(1)
	s.queues[i] <- batchItem{done: &done}
	s.mu.RUnlock()
	done.Wait()
	if s.disks == nil {
		return nil
	}
	return s.disks[i].log.Sync()
}

// ResetShard empties shard i through its worker queue: appends enqueued
// before the call commit first, the shard is then wiped (store and, on
// a durable engine, WAL + snapshots), and appends enqueued after land
// in the emptied shard. The handoff protocol resets the source copy
// after ownership flips, and a restore target resets before replaying
// so a retried restore cannot double-apply.
func (s *Sharded) ResetShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("tsdb: shard %d out of range [0,%d)", i, len(s.shards))
	}
	ch := make(chan error, 1)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	s.queues[i] <- batchItem{reset: ch}
	s.mu.RUnlock()
	return <-ch
}

// ShardStatus is a point-in-time operational description of one shard,
// the unit `districtctl cluster status` reports per node.
type ShardStatus struct {
	Shard       int    `json:"shard"`
	Series      int    `json:"series"`
	Samples     int    `json:"samples"`
	WALPending  int64  `json:"wal_pending_rows"`
	WALSegments int    `json:"wal_segments"`
	Dir         string `json:"dir,omitempty"`
	// Block-layer counters (zero on an in-memory engine): published
	// block files, their on-disk bytes, and the samples they cover
	// (index counts — demoted series still contribute).
	Blocks       int   `json:"blocks,omitempty"`
	BlockBytes   int64 `json:"block_bytes,omitempty"`
	BlockSamples int64 `json:"block_samples,omitempty"`
}

// ShardStatus snapshots one shard's live counters (zero durable fields
// on an in-memory engine). Series and Samples merge the head with the
// block files.
func (s *Sharded) ShardStatus(i int) ShardStatus {
	st := s.shards[i].Stats()
	out := ShardStatus{Shard: i, Series: st.Series, Samples: st.Samples}
	if s.disks != nil {
		d := s.disks[i]
		out.WALPending = d.sinceSnap.Load()
		out.WALSegments = d.log.Segments()
		out.Dir = d.dir
		bs := s.bsets[i]
		out.Series = len(s.shardKeysMerged(i))
		bs.mu.RLock()
		out.Blocks = len(bs.blocks)
		for _, b := range bs.blocks {
			out.BlockBytes += b.Size()
			out.BlockSamples += b.NumSamples()
		}
		bs.mu.RUnlock()
		out.Samples += int(out.BlockSamples)
	}
	return out
}

// shard returns the Store owning a device.
func (s *Sharded) shard(device string) *Store {
	return s.shards[s.ShardFor(device)]
}

// fnv64a is the FNV-1a hash, inlined to keep the per-row routing cost to
// a few nanoseconds on the ingest hot path.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// partitionScratch is the reusable working set of one append wave:
// counting arrays, one flat row/index backing sliced into per-shard
// windows, and the caller-aligned error slots. Waves recycle it through
// scratchPool, so a steady-state ingest stream repartitions in place
// instead of re-allocating per batch.
type partitionScratch struct {
	counts  []int
	offs    []int
	shardOf []int32
	rows    []Row
	idx     []int
	per     [][]Row
	peridx  [][]int
	errs    []error
	// pending counts the shard workers still holding windows of rows
	// (fire-and-forget waves); the last release returns the scratch.
	pending atomic.Int32
}

var scratchPool = sync.Pool{New: func() any { return new(partitionScratch) }}

// errSlots returns n zeroed caller-aligned error slots backed by the
// scratch.
func (sc *partitionScratch) errSlots(n int) []error {
	if cap(sc.errs) < n {
		sc.errs = make([]error, n)
	}
	errs := sc.errs[:n]
	for i := range errs {
		errs[i] = nil
	}
	return errs
}

// partition splits rows into per-shard sub-batches, recording each row's
// original index when track is set (so per-row errors line up). A
// counting pass sizes every sub-batch exactly — no growth reallocations
// on the ingest hot path — and the device hash is computed once per run
// of equal devices, since batched producers ship per-device runs. The
// sub-batches are windows over one flat copy owned by sc: callers may
// reuse their input immediately, and the whole wave recycles as one
// unit once every worker is done with it.
//
// districtlint:hotpath
func (s *Sharded) partition(sc *partitionScratch, rows []Row, track bool) (per [][]Row, idx [][]int) {
	n := len(s.shards)
	if cap(sc.counts) < n {
		sc.counts = make([]int, n)
		sc.offs = make([]int, n)
		sc.per = make([][]Row, n)
		sc.peridx = make([][]int, n)
	}
	counts := sc.counts[:n]
	for i := range counts {
		counts[i] = 0
	}
	if cap(sc.shardOf) < len(rows) {
		sc.shardOf = make([]int32, len(rows))
	}
	shardOf := sc.shardOf[:len(rows)]
	lastDev, sh := "", 0
	for i := range rows {
		if i == 0 || rows[i].Key.Device != lastDev {
			sh = s.ShardFor(rows[i].Key.Device)
			lastDev = rows[i].Key.Device
		}
		shardOf[i] = int32(sh)
		counts[sh]++
	}
	if cap(sc.rows) < len(rows) {
		sc.rows = make([]Row, len(rows))
	}
	flat := sc.rows[:len(rows)]
	var flatIdx []int
	if track {
		if cap(sc.idx) < len(rows) {
			sc.idx = make([]int, len(rows))
		}
		flatIdx = sc.idx[:len(rows)]
	}
	per = sc.per[:n]
	idx = nil
	if track {
		idx = sc.peridx[:n]
	}
	offs := sc.offs[:n]
	sum := 0
	for shn, c := range counts {
		offs[shn] = sum
		if c == 0 {
			per[shn] = nil
			if track {
				idx[shn] = nil
			}
		} else {
			// Full slice expression: appends stay inside the window.
			per[shn] = flat[sum : sum : sum+c]
			if track {
				idx[shn] = flatIdx[sum : sum : sum+c]
			}
		}
		sum += c
	}
	for i, r := range rows {
		shn := shardOf[i]
		per[shn] = append(per[shn], r)
		if track {
			idx[shn] = append(idx[shn], i)
		}
	}
	return per, idx
}

// Append stores one sample synchronously in the owning shard. On a
// durable engine it funnels through the shard's append queue, so the
// WAL keeps a single writer and the sample is journaled before the call
// returns.
func (s *Sharded) Append(key SeriesKey, smp Sample) error {
	if s.disks != nil {
		errs := s.AppendBatch([]Row{{Key: key, Sample: smp}})
		if errs != nil {
			return errs[0]
		}
		return nil
	}
	sh := s.ShardFor(key.Device)
	//lint:ignore walorder memory-only engine (no Dir): there is no WAL to journal to on this path
	if err := s.shards[sh].Append(key, smp); err != nil {
		return err
	}
	// Store applied, so bump the shard generation before acknowledging:
	// a result-cache key snapshotted after this ack can never collide
	// with one built before the write (the queue workers keep the same
	// apply-bump-ack order).
	s.gens[sh].Add(1)
	return nil
}

// AppendBatch splits rows by owning shard and applies the sub-batches in
// parallel through the per-shard append queues, waiting for all of them.
// The returned slice is aligned with rows (nil when every row landed);
// each worker writes only its own rows' slots, so no locking is needed
// around the shared slice.
func (s *Sharded) AppendBatch(rows []Row) []error {
	return s.appendBatch(rows, nil)
}

// AppendBatchStages is AppendBatch with per-request stage attribution:
// the shard workers record the WAL group-append and store-apply waits
// the batch experienced into st (nil-safe). With the batch split over
// several shards the stages accumulate across them — the totals then
// read as work done on the request's behalf, not wall-clock.
func (s *Sharded) AppendBatchStages(rows []Row, st *obs.Stages) []error {
	return s.appendBatch(rows, st)
}

func (s *Sharded) appendBatch(rows []Row, st *obs.Stages) []error {
	if len(rows) == 0 {
		return nil
	}
	sc := scratchPool.Get().(*partitionScratch)
	per, idx := s.partition(sc, rows, true)
	errs := sc.errSlots(len(rows))
	var done sync.WaitGroup

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		for i := range errs {
			errs[i] = ErrClosed
		}
		sc.errs = nil // the slice escapes to the caller
		scratchPool.Put(sc)
		return errs
	}
	for sh, sub := range per {
		if len(sub) == 0 {
			continue
		}
		done.Add(1)
		s.queues[sh] <- batchItem{rows: sub, idx: idx[sh], errs: errs, done: &done, stages: st}
	}
	s.mu.RUnlock()
	done.Wait()
	// Every worker has acked: the row windows are dead, the scratch can
	// carry the next wave. The error slice only escapes on failure.
	for _, err := range errs {
		if err != nil {
			sc.errs = nil
			scratchPool.Put(sc)
			return errs
		}
	}
	scratchPool.Put(sc)
	return nil
}

// Enqueue hands rows to the per-shard append workers without waiting
// for them to land; Flush establishes a happened-before with readers.
// Per-row errors are dropped: on an in-memory engine the only
// queued-append failure is a closed engine, and on a durable engine a
// shard whose WAL append fails discards the wave un-applied (the
// engine never acks state it cannot recover) — those rows are counted
// in Stats.DroppedRows. Rows are copied while partitioning, so the
// caller may reuse the slice immediately. Returns ErrClosed when the
// engine is closed.
func (s *Sharded) Enqueue(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	sc := scratchPool.Get().(*partitionScratch)
	per, _ := s.partition(sc, rows, false)
	nonEmpty := 0
	for _, sub := range per {
		if len(sub) > 0 {
			nonEmpty++
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		scratchPool.Put(sc)
		return ErrClosed
	}
	// The workers hold windows of the scratch until they apply (or drop)
	// them; the last one to finish recycles the wave.
	sc.pending.Store(int32(nonEmpty))
	release := func() {
		if sc.pending.Add(-1) == 0 {
			scratchPool.Put(sc)
		}
	}
	for sh, sub := range per {
		if len(sub) == 0 {
			continue
		}
		s.queues[sh] <- batchItem{rows: sub, release: release}
	}
	return nil
}

// Flush blocks until every append enqueued before the call has been
// applied to its shard.
func (s *Sharded) Flush() {
	var done sync.WaitGroup
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	for _, q := range s.queues {
		done.Add(1)
		q <- batchItem{done: &done}
	}
	s.mu.RUnlock()
	done.Wait()
}

// Query routes to the owning shard; on a durable engine the result
// merges the in-memory head with the shard's block files.
func (s *Sharded) Query(key SeriesKey, from, to time.Time) ([]Sample, error) {
	if s.bsets != nil {
		return s.mergedQuery(key, from, to)
	}
	return s.shard(key.Device).Query(key, from, to)
}

// QueryPage routes to the owning shard. A series lives in exactly one
// shard, so the value-based cursor is by construction a per-shard resume
// position and keeps its mutation-safety across pages — including
// across a compaction moving samples from the head into a block
// mid-walk, since the cursor is a timestamp, not an offset.
func (s *Sharded) QueryPage(key SeriesKey, from, to time.Time, cur Cursor, limit int) (Page, error) {
	if s.bsets != nil {
		return s.mergedQueryPage(key, from, to, cur, limit)
	}
	return s.shard(key.Device).QueryPage(key, from, to, cur, limit)
}

// Iter returns an iterator over the owning shard (head and blocks
// merged on a durable engine).
func (s *Sharded) Iter(key SeriesKey, from, to time.Time, pageSize int) *Iterator {
	if s.bsets != nil {
		return iterPager(s, key, from, to, pageSize)
	}
	return s.shard(key.Device).Iter(key, from, to, pageSize)
}

// Latest routes to the owning shard.
func (s *Sharded) Latest(key SeriesKey) (Sample, error) {
	if s.bsets != nil {
		return s.mergedLatest(key)
	}
	return s.shard(key.Device).Latest(key)
}

// Len routes to the owning shard.
func (s *Sharded) Len(key SeriesKey) int {
	if s.bsets != nil {
		return s.mergedLen(key)
	}
	return s.shard(key.Device).Len(key)
}

// Keys concatenates every shard's keys, in no particular order.
func (s *Sharded) Keys() []SeriesKey {
	var out []SeriesKey
	for i := range s.shards {
		out = append(out, s.ShardKeys(i)...)
	}
	return out
}

// KeysForDevice routes to the owning shard (a device's series never
// straddle shards).
func (s *Sharded) KeysForDevice(device string) []SeriesKey {
	if s.bsets != nil {
		return s.mergedKeysForDevice(device)
	}
	return s.shard(device).KeysForDevice(device)
}

// Aggregate routes to the owning shard. On a durable engine blocks
// fully inside the range answer from their index statistics without
// touching sample data.
func (s *Sharded) Aggregate(key SeriesKey, from, to time.Time) (Aggregate, error) {
	if s.bsets != nil {
		return s.mergedAggregate(key, from, to)
	}
	return s.shard(key.Device).Aggregate(key, from, to)
}

// Downsample routes to the owning shard. On a durable engine,
// minute/hour-multiple windows are served from precomputed rollups over
// the block-covered stretches of the range.
func (s *Sharded) Downsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Bucket, error) {
	if s.bsets != nil {
		return s.mergedDownsample(key, from, to, window)
	}
	return s.shard(key.Device).Downsample(key, from, to, window)
}

// Stats sums the shard counters. Samples counts head and block samples
// together, so it is invariant across compaction (and across retention
// demotion — demoted series keep contributing their index counts).
func (s *Sharded) Stats() Stats {
	var st Stats
	st.Shards = len(s.shards)
	st.DroppedRows = s.dropped.Load()
	for _, sh := range s.shards {
		sub := sh.Stats()
		st.Series += sub.Series
		st.Samples += sub.Samples
	}
	if s.bsets != nil {
		st.Series = 0
		for i := range s.shards {
			st.Series += len(s.ShardKeys(i))
		}
		for _, bs := range s.bsets {
			bs.mu.RLock()
			for _, b := range bs.blocks {
				st.Samples += int(b.NumSamples())
			}
			bs.mu.RUnlock()
		}
	}
	return st
}

// Drop removes a series from its owning shard. On a durable engine the
// removal routes through the shard worker, which also rewrites any
// block files containing the series and anchors the new view with a
// snapshot; a failure there leaves the block copies in place (the head
// part is already gone) and is reported via DropSeries.
func (s *Sharded) Drop(key SeriesKey) {
	if s.bsets != nil {
		if err := s.DropSeries(key); err != nil && !errors.Is(err, ErrClosed) {
			log.Printf("tsdb: drop %s: %v", key, err)
		}
		return
	}
	sh := s.ShardFor(key.Device)
	s.shards[sh].Drop(key)
	s.gens[sh].Add(1) // mutation acked below: retire cached reads of the series
}

// DropSeries is Drop with the block-rewrite outcome reported.
func (s *Sharded) DropSeries(key SeriesKey) error {
	if s.bsets == nil {
		sh := s.ShardFor(key.Device)
		s.shards[sh].Drop(key)
		s.gens[sh].Add(1)
		return nil
	}
	return s.enqueueOp(s.ShardFor(key.Device), &shardOp{kind: opDrop, key: key})
}

// CompactShard forces one compaction cycle on shard i through its
// worker queue: cut head rows past the head window into a block, apply
// retention, snapshot, truncate the WAL. Requires a durable engine.
func (s *Sharded) CompactShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("tsdb: shard %d out of range [0,%d)", i, len(s.shards))
	}
	if s.bsets == nil {
		return fmt.Errorf("tsdb: compaction requires a durable engine")
	}
	return s.enqueueOp(i, &shardOp{kind: opCompact})
}

// CompactAll forces a compaction cycle on every shard.
func (s *Sharded) CompactAll() error {
	var err error
	for i := range s.shards {
		if cerr := s.CompactShard(i); cerr != nil {
			err = errors.Join(err, fmt.Errorf("shard %d: %w", i, cerr))
		}
	}
	return err
}

// ImportShardBlocks copies the block files referenced by srcDir's
// snapshot manifest into shard i and publishes them. The cluster
// restore path ships block files wholesale with it — rollup-only
// (demoted) data has no raw rows left to replay through the write path.
func (s *Sharded) ImportShardBlocks(i int, srcDir string) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("tsdb: shard %d out of range [0,%d)", i, len(s.shards))
	}
	if s.bsets == nil {
		return fmt.Errorf("tsdb: block import requires a durable engine")
	}
	return s.enqueueOp(i, &shardOp{kind: opImport, dir: srcDir})
}

// enqueueOp routes an admin op through shard i's worker and waits for
// its outcome.
func (s *Sharded) enqueueOp(i int, op *shardOp) error {
	op.done = make(chan error, 1)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	s.queues[i] <- batchItem{op: op}
	s.mu.RUnlock()
	return <-op.done
}

// Close drains the append queues, stops the workers, syncs and closes
// the per-shard WALs, and closes the shards. Subsequent writes fail
// with ErrClosed. It satisfies the void Engine interface; a WAL close
// failure (the final segment flush may not have reached disk) is
// logged — use CloseErr to receive it instead.
func (s *Sharded) Close() {
	if err := s.CloseErr(); err != nil {
		log.Printf("tsdb: close: %v", err)
	}
}

// CloseErr is Close returning the joined per-shard WAL close errors: the
// last word on whether every journaled batch reached disk.
func (s *Sharded) CloseErr() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, q := range s.queues {
		close(q)
	}
	s.mu.Unlock()
	s.wg.Wait()
	var err error
	for i, d := range s.disks {
		if cerr := d.log.Close(); cerr != nil {
			err = errors.Join(err, fmt.Errorf("shard %d: %w", i, cerr))
		}
	}
	for i, bs := range s.bsets {
		bs.mu.Lock()
		blocks := bs.blocks
		bs.blocks = nil
		bs.mu.Unlock()
		for _, b := range blocks {
			if cerr := b.Close(); cerr != nil {
				err = errors.Join(err, fmt.Errorf("shard %d: %w", i, cerr))
			}
		}
	}
	for _, sh := range s.shards {
		sh.Close()
	}
	return err
}
