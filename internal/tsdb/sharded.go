package tsdb

import (
	"sync"
	"time"
)

// Engine is the storage surface the measurements services program
// against: the single-lock Store implements it, and so does the
// device-hash Sharded engine that partitions the key space for
// write-parallel ingest. Readers and writers address series by key;
// which shard (if any) owns a series is the engine's business.
type Engine interface {
	Append(key SeriesKey, smp Sample) error
	AppendBatch(rows []Row) []error
	Query(key SeriesKey, from, to time.Time) ([]Sample, error)
	QueryPage(key SeriesKey, from, to time.Time, cur Cursor, limit int) (Page, error)
	Iter(key SeriesKey, from, to time.Time, pageSize int) *Iterator
	Latest(key SeriesKey) (Sample, error)
	Len(key SeriesKey) int
	Keys() []SeriesKey
	KeysForDevice(device string) []SeriesKey
	Aggregate(key SeriesKey, from, to time.Time) (Aggregate, error)
	Downsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Bucket, error)
	Stats() Stats
	Drop(key SeriesKey)
	Close()
}

var (
	_ Engine = (*Store)(nil)
	_ Engine = (*Sharded)(nil)
)

// Row is one keyed sample, the unit of batched ingest.
type Row struct {
	Key    SeriesKey
	Sample Sample
}

// AppendBatch appends rows in order, coalescing consecutive rows of the
// same series into one locked run: batched producers (device buffers,
// NDJSON backfills, the ingest chunker) pay the map lookup and the
// series lock once per run instead of once per sample. The returned
// slice is aligned with rows — errs[i] is rows[i]'s failure — and nil
// when every row landed.
func (s *Store) AppendBatch(rows []Row) []error {
	var errs []error
	for j := 0; j < len(rows); {
		k := j + 1
		for k < len(rows) && rows[k].Key == rows[j].Key {
			k++
		}
		if err := s.appendRun(rows[j].Key, rows[j:k]); err != nil {
			if errs == nil {
				errs = make([]error, len(rows))
			}
			for m := j; m < k; m++ {
				errs[m] = err
			}
		}
		j = k
	}
	return errs
}

// DefaultShards is the shard count a zero ShardedOptions gets.
const DefaultShards = 8

// defaultQueueLen is the per-shard append-queue capacity, in batches.
const defaultQueueLen = 256

// ShardedOptions configure a Sharded engine.
type ShardedOptions struct {
	// Shards is the number of device-hash partitions (default
	// DefaultShards). All of a device's series land in one shard, so
	// per-series ordering and cursor semantics are exactly the Store's.
	Shards int
	// Store configures each shard's underlying Store.
	Store Options
	// QueueLen is the per-shard append-queue capacity in batches
	// (default 256). Enqueue blocks when a shard's queue is full, which
	// back-pressures producers instead of growing memory.
	QueueLen int
}

// Sharded is a device-hash-partitioned storage engine: N independent
// Stores, each owning the series of the devices that hash to it, plus a
// single-writer append queue per shard. Reads route to the owning shard
// and behave exactly like a Store (same value-based cursors, same
// iterator); batched writes are split by shard and applied by the
// per-shard workers in parallel, so ingest throughput scales with the
// shard count instead of funnelling through one lock.
type Sharded struct {
	shards []*Store
	queues []chan batchItem

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	wg     sync.WaitGroup
}

// batchItem is one unit of work on a shard's append queue. rows are the
// shard's slice of a caller batch; idx maps them back to the caller's
// indices inside errs (both nil for fire-and-forget enqueues). done, when
// set, is signalled after the rows are applied.
type batchItem struct {
	rows []Row
	idx  []int
	errs []error
	done *sync.WaitGroup
}

// NewSharded creates a Sharded engine and starts its append workers.
func NewSharded(opts ShardedOptions) *Sharded {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	qlen := opts.QueueLen
	if qlen <= 0 {
		qlen = defaultQueueLen
	}
	s := &Sharded{
		shards: make([]*Store, n),
		queues: make([]chan batchItem, n),
	}
	for i := 0; i < n; i++ {
		s.shards[i] = New(opts.Store)
		s.queues[i] = make(chan batchItem, qlen)
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// worker drains one shard's append queue; it is the shard's only queued
// writer, so queued appends never contend with each other and ride the
// run-grouped batch path.
func (s *Sharded) worker(i int) {
	defer s.wg.Done()
	store := s.shards[i]
	for item := range s.queues[i] {
		errs := store.AppendBatch(item.rows)
		if errs != nil && item.errs != nil {
			for j, err := range errs {
				if err != nil {
					item.errs[item.idx[j]] = err
				}
			}
		}
		if item.done != nil {
			item.done.Done()
		}
	}
}

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardFor reports which shard owns a device's series.
func (s *Sharded) ShardFor(device string) int {
	return int(fnv64a(device) % uint64(len(s.shards)))
}

// Shard exposes one shard's Store (scatter-gather planners fan reads
// over the shards directly).
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// shard returns the Store owning a device.
func (s *Sharded) shard(device string) *Store {
	return s.shards[s.ShardFor(device)]
}

// fnv64a is the FNV-1a hash, inlined to keep the per-row routing cost to
// a few nanoseconds on the ingest hot path.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// partition splits rows into per-shard sub-batches, recording each row's
// original index when track is set (so per-row errors line up). A
// counting pass sizes every sub-batch exactly — no growth reallocations
// on the ingest hot path — and the device hash is computed once per run
// of equal devices, since batched producers ship per-device runs.
func (s *Sharded) partition(rows []Row, track bool) (per [][]Row, idx [][]int) {
	n := len(s.shards)
	counts := make([]int, n)
	shardOf := make([]int32, len(rows))
	lastDev, sh := "", 0
	for i := range rows {
		if i == 0 || rows[i].Key.Device != lastDev {
			sh = s.ShardFor(rows[i].Key.Device)
			lastDev = rows[i].Key.Device
		}
		shardOf[i] = int32(sh)
		counts[sh]++
	}
	per = make([][]Row, n)
	if track {
		idx = make([][]int, n)
	}
	for sh, c := range counts {
		if c == 0 {
			continue
		}
		per[sh] = make([]Row, 0, c)
		if track {
			idx[sh] = make([]int, 0, c)
		}
	}
	for i, r := range rows {
		sh := shardOf[i]
		per[sh] = append(per[sh], r)
		if track {
			idx[sh] = append(idx[sh], i)
		}
	}
	return per, idx
}

// Append stores one sample synchronously in the owning shard.
func (s *Sharded) Append(key SeriesKey, smp Sample) error {
	return s.shard(key.Device).Append(key, smp)
}

// AppendBatch splits rows by owning shard and applies the sub-batches in
// parallel through the per-shard append queues, waiting for all of them.
// The returned slice is aligned with rows (nil when every row landed);
// each worker writes only its own rows' slots, so no locking is needed
// around the shared slice.
func (s *Sharded) AppendBatch(rows []Row) []error {
	if len(rows) == 0 {
		return nil
	}
	per, idx := s.partition(rows, true)
	errs := make([]error, len(rows))
	var done sync.WaitGroup

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		for i := range errs {
			errs[i] = ErrClosed
		}
		return errs
	}
	for sh, sub := range per {
		if len(sub) == 0 {
			continue
		}
		done.Add(1)
		s.queues[sh] <- batchItem{rows: sub, idx: idx[sh], errs: errs, done: &done}
	}
	s.mu.RUnlock()
	done.Wait()

	for _, err := range errs {
		if err != nil {
			return errs
		}
	}
	return nil
}

// Enqueue hands rows to the per-shard append workers without waiting
// for them to land; Flush establishes a happened-before with readers.
// Errors are dropped (the only queued-append failure is a closed
// engine). Rows are copied while partitioning, so the caller may reuse
// the slice immediately. Returns ErrClosed when the engine is closed.
func (s *Sharded) Enqueue(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	per, _ := s.partition(rows, false)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for sh, sub := range per {
		if len(sub) == 0 {
			continue
		}
		s.queues[sh] <- batchItem{rows: sub}
	}
	return nil
}

// Flush blocks until every append enqueued before the call has been
// applied to its shard.
func (s *Sharded) Flush() {
	var done sync.WaitGroup
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	for _, q := range s.queues {
		done.Add(1)
		q <- batchItem{done: &done}
	}
	s.mu.RUnlock()
	done.Wait()
}

// Query routes to the owning shard.
func (s *Sharded) Query(key SeriesKey, from, to time.Time) ([]Sample, error) {
	return s.shard(key.Device).Query(key, from, to)
}

// QueryPage routes to the owning shard. A series lives in exactly one
// shard, so the value-based cursor is by construction a per-shard resume
// position and keeps its mutation-safety across pages.
func (s *Sharded) QueryPage(key SeriesKey, from, to time.Time, cur Cursor, limit int) (Page, error) {
	return s.shard(key.Device).QueryPage(key, from, to, cur, limit)
}

// Iter returns the owning shard's iterator.
func (s *Sharded) Iter(key SeriesKey, from, to time.Time, pageSize int) *Iterator {
	return s.shard(key.Device).Iter(key, from, to, pageSize)
}

// Latest routes to the owning shard.
func (s *Sharded) Latest(key SeriesKey) (Sample, error) {
	return s.shard(key.Device).Latest(key)
}

// Len routes to the owning shard.
func (s *Sharded) Len(key SeriesKey) int { return s.shard(key.Device).Len(key) }

// Keys concatenates every shard's keys, in no particular order.
func (s *Sharded) Keys() []SeriesKey {
	var out []SeriesKey
	for _, sh := range s.shards {
		out = append(out, sh.Keys()...)
	}
	return out
}

// KeysForDevice routes to the owning shard (a device's series never
// straddle shards).
func (s *Sharded) KeysForDevice(device string) []SeriesKey {
	return s.shard(device).KeysForDevice(device)
}

// Aggregate routes to the owning shard.
func (s *Sharded) Aggregate(key SeriesKey, from, to time.Time) (Aggregate, error) {
	return s.shard(key.Device).Aggregate(key, from, to)
}

// Downsample routes to the owning shard.
func (s *Sharded) Downsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Bucket, error) {
	return s.shard(key.Device).Downsample(key, from, to, window)
}

// Stats sums the shard counters.
func (s *Sharded) Stats() Stats {
	var st Stats
	st.Shards = len(s.shards)
	for _, sh := range s.shards {
		sub := sh.Stats()
		st.Series += sub.Series
		st.Samples += sub.Samples
	}
	return st
}

// Drop removes a series from its owning shard.
func (s *Sharded) Drop(key SeriesKey) { s.shard(key.Device).Drop(key) }

// Close drains the append queues, stops the workers, and closes the
// shards. Subsequent writes fail with ErrClosed.
func (s *Sharded) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		close(q)
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, sh := range s.shards {
		sh.Close()
	}
}
