package tsdb

import (
	"testing"
	"time"
)

func TestQueryPageWalksWholeRange(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 1000, time.Second)

	var got []Sample
	var cur Cursor
	pages := 0
	for {
		page, err := s.QueryPage(key(), t0, t0.Add(999*time.Second), cur, 64)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Samples...)
		pages++
		if !page.More {
			break
		}
		cur = page.Next
	}
	if len(got) != 1000 {
		t.Fatalf("paged walk returned %d samples, want 1000", len(got))
	}
	if pages != (1000+63)/64 {
		t.Errorf("walk took %d pages, want %d", pages, (1000+63)/64)
	}
	for i, smp := range got {
		if smp.Value != float64(i) {
			t.Fatalf("sample %d = %v, want %d (duplicate or gap)", i, smp.Value, i)
		}
	}
}

func TestQueryPageExactBoundary(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 100, time.Second)

	// A limit dividing the range exactly: the look-ahead must notice the
	// range ended, so no trailing empty page is ever served.
	page, err := s.QueryPage(key(), t0, t0.Add(99*time.Second), Cursor{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Samples) != 100 || page.More {
		t.Fatalf("full-range page: %d samples, more=%v", len(page.Samples), page.More)
	}

	page, err = s.QueryPage(key(), t0, t0.Add(99*time.Second), Cursor{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Samples) != 50 || !page.More {
		t.Fatalf("first half: %d samples, more=%v", len(page.Samples), page.More)
	}
	page, err = s.QueryPage(key(), t0, t0.Add(99*time.Second), page.Next, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Samples) != 50 || page.More {
		t.Fatalf("second half: %d samples, more=%v", len(page.Samples), page.More)
	}
}

func TestQueryPageEmptyAndErrors(t *testing.T) {
	s := New(Options{})
	if _, err := s.QueryPage(key(), t0, t0.Add(time.Hour), Cursor{}, 10); err != ErrNoSeries {
		t.Fatalf("missing series error = %v", err)
	}
	fill(t, s, key(), 10, time.Second)
	if _, err := s.QueryPage(key(), t0.Add(time.Hour), t0, Cursor{}, 10); err != ErrBadInterval {
		t.Fatalf("inverted interval error = %v", err)
	}
	// An empty window inside a populated series: empty page, no More.
	page, err := s.QueryPage(key(), t0.Add(time.Hour), t0.Add(2*time.Hour), Cursor{}, 10)
	if err != nil || len(page.Samples) != 0 || page.More {
		t.Fatalf("empty window page = %+v, err %v", page, err)
	}
	// A cursor already past the range end: empty page.
	page, err = s.QueryPage(key(), t0, t0.Add(5*time.Second), Cursor{After: t0.Add(time.Hour)}, 10)
	if err != nil || len(page.Samples) != 0 || page.More {
		t.Fatalf("past-end cursor page = %+v, err %v", page, err)
	}
}

func TestQueryPageDuplicateTimestamps(t *testing.T) {
	s := New(Options{})
	k := key()
	// 30 samples sharing 10 timestamps, 3 each.
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i/3) * time.Second)
		if err := s.Append(k, Sample{At: at, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Sample
	var cur Cursor
	for {
		// Page size 2 never divides the 3-sample runs evenly, so every
		// cursor lands mid-timestamp and Seen must do its job.
		page, err := s.QueryPage(k, t0, t0.Add(time.Minute), cur, 2)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Samples...)
		if !page.More {
			break
		}
		cur = page.Next
	}
	if len(got) != 30 {
		t.Fatalf("paged walk returned %d samples, want 30", len(got))
	}
	for i, smp := range got {
		if smp.Value != float64(i) {
			t.Fatalf("sample %d = %v, want %d", i, smp.Value, i)
		}
	}
}

func TestQueryPageSurvivesMutation(t *testing.T) {
	s := New(Options{MaxSamplesPerSeries: 1 << 20})
	k := key()
	fill(t, s, k, 100, time.Second)

	page, err := s.QueryPage(k, t0, t0.Add(200*time.Second), Cursor{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Samples) != 40 || !page.More {
		t.Fatalf("first page: %d samples, more=%v", len(page.Samples), page.More)
	}

	// Mutate between pages: append newer samples inside the range and an
	// out-of-order one before the cursor. The resumed walk must not
	// duplicate or skip anything at or after the cursor position.
	for i := 100; i < 120; i++ {
		_ = s.Append(k, Sample{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	_ = s.Append(k, Sample{At: t0.Add(5 * time.Millisecond), Value: -1}) // spills before the cursor

	var rest []Sample
	cur := page.Next
	for {
		p, err := s.QueryPage(k, t0, t0.Add(200*time.Second), cur, 40)
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, p.Samples...)
		if !p.More {
			break
		}
		cur = p.Next
	}
	if len(rest) != 80 {
		t.Fatalf("resumed walk returned %d samples, want 80", len(rest))
	}
	for i, smp := range rest {
		if smp.Value != float64(40+i) {
			t.Fatalf("resumed sample %d = %v, want %d", i, smp.Value, 40+i)
		}
	}
}

func TestIteratorMatchesQuery(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 5000, time.Second)
	from, to := t0.Add(100*time.Second), t0.Add(4200*time.Second)

	want, err := s.Query(key(), from, to)
	if err != nil {
		t.Fatal(err)
	}
	it := s.Iter(key(), from, to, 128)
	var got []Sample
	for {
		smp, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, smp)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterator returned %d samples, Query %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: iter %v, query %v", i, got[i], want[i])
		}
	}
}

func TestIteratorMissingSeries(t *testing.T) {
	s := New(Options{})
	it := s.Iter(key(), t0, t0.Add(time.Hour), 0)
	if _, ok := it.Next(); ok {
		t.Fatal("iterator over a missing series yielded a sample")
	}
	if it.Err() != ErrNoSeries {
		t.Fatalf("iterator error = %v, want ErrNoSeries", it.Err())
	}
}

func TestAggregateAndDownsampleViaIterator(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 1000, time.Second)
	agg, err := s.Aggregate(key(), t0, t0.Add(999*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 1000 || agg.Min != 0 || agg.Max != 999 || agg.Mean != 499.5 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.First.Value != 0 || agg.Last.Value != 999 {
		t.Fatalf("aggregate endpoints = %+v", agg)
	}
	buckets, err := s.Downsample(key(), t0, t0.Add(999*time.Second), 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 10 {
		t.Fatalf("buckets = %d, want 10", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != 1000 {
		t.Fatalf("bucketed samples = %d, want 1000", total)
	}
}
