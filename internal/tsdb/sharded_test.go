package tsdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

var shT0 = time.Date(2015, 3, 9, 10, 0, 0, 0, time.UTC)

func shKey(d int) SeriesKey {
	return SeriesKey{Device: fmt.Sprintf("urn:district:turin/building:b%03d/device:d0", d), Quantity: "temperature"}
}

// TestShardedSingleShardEquivalence replays one mixed workload — in-order
// appends, out-of-order spills, eviction pressure — into a plain Store
// and a 1-shard Sharded engine and requires identical reads: the sharded
// engine must be a pure partitioning layer, not a semantic change.
func TestShardedSingleShardEquivalence(t *testing.T) {
	opts := Options{MaxSamplesPerSeries: 128, SegmentSize: 16}
	plain := New(opts)
	defer plain.Close()
	sharded := NewSharded(ShardedOptions{Shards: 1, Store: opts})
	defer sharded.Close()

	rng := rand.New(rand.NewSource(42))
	const devices, rows = 5, 700
	for i := 0; i < rows; i++ {
		key := shKey(rng.Intn(devices))
		at := shT0.Add(time.Duration(i) * time.Second)
		if rng.Intn(10) == 0 { // out-of-order arrival
			at = at.Add(-time.Duration(rng.Intn(500)) * time.Second)
		}
		smp := Sample{At: at, Value: float64(i)}
		if err := plain.Append(key, smp); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Append(key, smp); err != nil {
			t.Fatal(err)
		}
	}

	if p, s := plain.Stats(), sharded.Stats(); p.Series != s.Series || p.Samples != s.Samples {
		t.Fatalf("stats diverge: plain %+v sharded %+v", p, s)
	}
	to := shT0.Add(rows * time.Second)
	for d := 0; d < devices; d++ {
		key := shKey(d)
		want, err1 := plain.Query(key, shT0.Add(-time.Hour), to)
		got, err2 := sharded.Query(key, shT0.Add(-time.Hour), to)
		if err1 != nil || err2 != nil {
			t.Fatalf("query errs: %v / %v", err1, err2)
		}
		if len(want) != len(got) {
			t.Fatalf("device %d: plain %d samples, sharded %d", d, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("device %d sample %d: %+v != %+v", d, i, want[i], got[i])
			}
		}
		wa, _ := plain.Aggregate(key, shT0.Add(-time.Hour), to)
		ga, _ := sharded.Aggregate(key, shT0.Add(-time.Hour), to)
		if wa != ga {
			t.Fatalf("device %d aggregate: %+v != %+v", d, wa, ga)
		}
		// Page walks agree too (same value cursors).
		var cur Cursor
		var paged int
		for {
			page, err := sharded.QueryPage(key, shT0.Add(-time.Hour), to, cur, 37)
			if err != nil {
				t.Fatal(err)
			}
			paged += len(page.Samples)
			if !page.More {
				break
			}
			cur = page.Next
		}
		if paged != len(want) {
			t.Fatalf("device %d: paged %d of %d samples", d, paged, len(want))
		}
	}
}

// TestShardedRouting pins every series of one device to one shard and
// checks the whole-engine key listing covers all shards.
func TestShardedRouting(t *testing.T) {
	s := NewSharded(ShardedOptions{Shards: 8})
	defer s.Close()
	const devices = 64
	for d := 0; d < devices; d++ {
		key := shKey(d)
		if err := s.Append(key, Sample{At: shT0, Value: 1}); err != nil {
			t.Fatal(err)
		}
		other := SeriesKey{Device: key.Device, Quantity: "humidity"}
		if err := s.Append(other, Sample{At: shT0, Value: 2}); err != nil {
			t.Fatal(err)
		}
		if got := s.KeysForDevice(key.Device); len(got) != 2 {
			t.Fatalf("device %d: %d keys", d, len(got))
		}
		sh := s.ShardFor(key.Device)
		if s.Shard(sh).Len(key) != 1 {
			t.Fatalf("device %d not in shard %d", d, sh)
		}
	}
	if got := len(s.Keys()); got != 2*devices {
		t.Fatalf("Keys() = %d, want %d", got, 2*devices)
	}
	populated := 0
	for i := 0; i < s.NumShards(); i++ {
		if len(s.Shard(i).Keys()) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("device hash left %d of %d shards populated", populated, s.NumShards())
	}
}

// TestShardedAppendBatchPerRowErrors closes the engine mid-way and
// checks AppendBatch reports per-row ErrClosed, aligned by index.
func TestShardedAppendBatchPerRowErrors(t *testing.T) {
	s := NewSharded(ShardedOptions{Shards: 4})
	rows := make([]Row, 10)
	for i := range rows {
		rows[i] = Row{Key: shKey(i), Sample: Sample{At: shT0.Add(time.Duration(i) * time.Second), Value: float64(i)}}
	}
	if errs := s.AppendBatch(rows); errs != nil {
		t.Fatalf("healthy batch returned errors: %v", errs)
	}
	for i := range rows {
		if s.Len(rows[i].Key) != 1 {
			t.Fatalf("row %d not stored", i)
		}
	}
	s.Close()
	errs := s.AppendBatch(rows)
	if errs == nil {
		t.Fatal("batch on closed engine reported success")
	}
	for i, err := range errs {
		if err != ErrClosed {
			t.Fatalf("row %d: err = %v, want ErrClosed", i, err)
		}
	}
	if err := s.Enqueue(rows); err != ErrClosed {
		t.Fatalf("Enqueue on closed engine = %v, want ErrClosed", err)
	}
}

// TestShardedEnqueueFlush checks the fire-and-forget path: appends are
// visible after Flush, whatever shard they hashed to.
func TestShardedEnqueueFlush(t *testing.T) {
	s := NewSharded(ShardedOptions{Shards: 4})
	defer s.Close()
	const devices, perDevice = 16, 50
	for i := 0; i < perDevice; i++ {
		rows := make([]Row, devices)
		for d := 0; d < devices; d++ {
			rows[d] = Row{Key: shKey(d), Sample: Sample{At: shT0.Add(time.Duration(i) * time.Second), Value: float64(i)}}
		}
		if err := s.Enqueue(rows); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	for d := 0; d < devices; d++ {
		if got := s.Len(shKey(d)); got != perDevice {
			t.Fatalf("device %d: %d samples after flush, want %d", d, got, perDevice)
		}
	}
}

// TestShardedCursorStableUnderConcurrentIngest is the write-while-read
// guarantee of the ingest redesign: a client pages through one series
// with value cursors while batched ingest hammers every shard (including
// the series being read). The walk must see every sample that existed
// when it started, exactly once, in order.
func TestShardedCursorStableUnderConcurrentIngest(t *testing.T) {
	s := NewSharded(ShardedOptions{Shards: 8})
	defer s.Close()
	readKey := shKey(0)
	const preloaded = 2000
	for i := 0; i < preloaded; i++ {
		if err := s.Append(readKey, Sample{At: shT0.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	to := shT0.Add(preloaded * time.Second) // pin the upper bound: new ingest lands beyond it

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows := make([]Row, 64)
				for j := range rows {
					// Writer 0 keeps appending to the series being read,
					// beyond the pinned range; others spray the shards.
					d := (w*31 + j) % 32
					if w == 0 {
						d = 0
					}
					rows[j] = Row{
						Key:    shKey(d),
						Sample: Sample{At: shT0.Add(time.Duration(preloaded+1+i*64+j) * time.Second), Value: 1},
					}
				}
				i++
				if errs := s.AppendBatch(rows); errs != nil {
					t.Errorf("ingest batch failed: %v", errs[0])
					return
				}
			}
		}(w)
	}

	var got []Sample
	var cur Cursor
	for {
		page, err := s.QueryPage(readKey, shT0, to, cur, 97)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Samples...)
		if !page.More {
			break
		}
		cur = page.Next
		time.Sleep(time.Millisecond) // let writers interleave between pages
	}
	close(stop)
	wg.Wait()

	if len(got) != preloaded {
		t.Fatalf("walked %d samples, want %d", len(got), preloaded)
	}
	for i, smp := range got {
		if smp.Value != float64(i) {
			t.Fatalf("sample %d out of order or duplicated: value %v", i, smp.Value)
		}
	}
}
