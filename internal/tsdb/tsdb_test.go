package tsdb

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2015, 3, 9, 0, 0, 0, 0, time.UTC)

func key() SeriesKey { return SeriesKey{Device: "urn:d/device:x", Quantity: "temperature"} }

func fill(t *testing.T, s *Store, k SeriesKey, n int, step time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Append(k, Sample{At: t0.Add(time.Duration(i) * step), Value: float64(i)}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestAppendAndQuery(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 100, time.Second)
	got, err := s.Query(key(), t0.Add(10*time.Second), t0.Add(19*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	if got[0].Value != 10 || got[9].Value != 19 {
		t.Errorf("range wrong: first %v last %v", got[0].Value, got[9].Value)
	}
}

func TestQueryUnknownSeries(t *testing.T) {
	s := New(Options{})
	if _, err := s.Query(key(), t0, t0.Add(time.Hour)); err != ErrNoSeries {
		t.Fatalf("err = %v, want ErrNoSeries", err)
	}
	if _, err := s.Latest(key()); err != ErrNoSeries {
		t.Fatalf("Latest err = %v, want ErrNoSeries", err)
	}
}

func TestQueryBadInterval(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 1, time.Second)
	if _, err := s.Query(key(), t0.Add(time.Hour), t0); err != ErrBadInterval {
		t.Fatalf("err = %v, want ErrBadInterval", err)
	}
}

func TestLatest(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 50, time.Second)
	got, err := s.Latest(key())
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != 49 {
		t.Errorf("Latest = %v, want 49", got.Value)
	}
}

func TestOutOfOrderMergedOnRead(t *testing.T) {
	s := New(Options{})
	k := key()
	// Append even seconds forward, then odd seconds backwards.
	for i := 0; i < 10; i += 2 {
		_ = s.Append(k, Sample{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	for i := 9; i >= 1; i -= 2 {
		_ = s.Append(k, Sample{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	got, err := s.Query(k, t0, t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	for i, smp := range got {
		if smp.Value != float64(i) {
			t.Fatalf("position %d has value %v", i, smp.Value)
		}
	}
}

func TestEvictionBound(t *testing.T) {
	s := New(Options{MaxSamplesPerSeries: 100, SegmentSize: 16})
	fill(t, s, key(), 1000, time.Second)
	if n := s.Len(key()); n > 100 {
		t.Fatalf("Len = %d, want <= 100", n)
	}
	// Newest samples must survive.
	latest, err := s.Latest(key())
	if err != nil {
		t.Fatal(err)
	}
	if latest.Value != 999 {
		t.Errorf("Latest after eviction = %v, want 999", latest.Value)
	}
	got, err := s.Query(key(), t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].At.Before(got[i-1].At) {
			t.Fatal("eviction broke ordering")
		}
	}
}

func TestRetentionDropsOldAppends(t *testing.T) {
	s := New(Options{Retention: time.Hour})
	old := Sample{At: time.Now().Add(-2 * time.Hour), Value: 1}
	if err := s.Append(key(), old); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(key()); n != 0 {
		t.Fatalf("Len = %d, want 0 (sample beyond retention)", n)
	}
	fresh := Sample{At: time.Now(), Value: 2}
	if err := s.Append(key(), fresh); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(key()); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestClose(t *testing.T) {
	s := New(Options{})
	s.Close()
	if err := s.Append(key(), Sample{At: time.Now()}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestAggregate(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 10, time.Second) // values 0..9
	a, err := s.Aggregate(key(), t0, t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != 10 || a.Min != 0 || a.Max != 9 || a.Sum != 45 || a.Mean != 4.5 {
		t.Errorf("Aggregate = %+v", a)
	}
	if a.First.Value != 0 || a.Last.Value != 9 {
		t.Errorf("First/Last = %v/%v", a.First.Value, a.Last.Value)
	}
}

func TestDownsample(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 120, time.Second) // two minutes of 1 Hz data
	buckets, err := s.Downsample(key(), t0, t0.Add(2*time.Minute), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	if buckets[0].Count != 60 || buckets[1].Count != 60 {
		t.Errorf("bucket counts = %d, %d", buckets[0].Count, buckets[1].Count)
	}
	if buckets[0].Mean != 29.5 {
		t.Errorf("first bucket mean = %v, want 29.5", buckets[0].Mean)
	}
	if !buckets[1].Start.Equal(t0.Add(time.Minute)) {
		t.Errorf("second bucket start = %v", buckets[1].Start)
	}
}

func TestDownsampleBadWindow(t *testing.T) {
	s := New(Options{})
	fill(t, s, key(), 1, time.Second)
	if _, err := s.Downsample(key(), t0, t0.Add(time.Minute), 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestKeysAndKeysForDevice(t *testing.T) {
	s := New(Options{})
	_ = s.Append(SeriesKey{"urn:a", "temperature"}, Sample{At: t0, Value: 1})
	_ = s.Append(SeriesKey{"urn:a", "humidity"}, Sample{At: t0, Value: 2})
	_ = s.Append(SeriesKey{"urn:b", "temperature"}, Sample{At: t0, Value: 3})
	if got := len(s.Keys()); got != 3 {
		t.Errorf("Keys = %d, want 3", got)
	}
	ka := s.KeysForDevice("urn:a")
	if len(ka) != 2 || ka[0].Quantity != "humidity" || ka[1].Quantity != "temperature" {
		t.Errorf("KeysForDevice = %v", ka)
	}
}

func TestStatsAndDrop(t *testing.T) {
	s := New(Options{})
	_ = s.Append(SeriesKey{"urn:a", "temperature"}, Sample{At: t0, Value: 1})
	_ = s.Append(SeriesKey{"urn:b", "temperature"}, Sample{At: t0, Value: 1})
	st := s.Stats()
	if st.Series != 2 || st.Samples != 2 {
		t.Errorf("Stats = %+v", st)
	}
	s.Drop(SeriesKey{"urn:a", "temperature"})
	if st := s.Stats(); st.Series != 1 {
		t.Errorf("Stats after Drop = %+v", st)
	}
}

func TestConcurrentAppendAndQuery(t *testing.T) {
	s := New(Options{MaxSamplesPerSeries: 10000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := SeriesKey{Device: "urn:dev", Quantity: "temperature"}
			for i := 0; i < 500; i++ {
				_ = s.Append(k, Sample{At: t0.Add(time.Duration(w*500+i) * time.Millisecond), Value: float64(i)})
				if i%50 == 0 {
					_, _ = s.Query(k, t0, t0.Add(time.Hour))
					_, _ = s.Latest(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := s.Len(SeriesKey{Device: "urn:dev", Quantity: "temperature"}); n != 4000 {
		t.Fatalf("Len = %d, want 4000", n)
	}
}

// Property: for any permutation of distinct timestamps, Query over the
// full range returns all samples sorted ascending.
func TestQuerySortedProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		s := New(Options{})
		k := key()
		for _, i := range perm {
			if err := s.Append(k, Sample{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
				return false
			}
		}
		got, err := s.Query(k, t0, t0.Add(time.Duration(n)*time.Second))
		if err != nil || len(got) != n {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i].At.Before(got[j].At) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: aggregate invariants Min <= Mean <= Max and Count == len.
func TestAggregateInvariantProperty(t *testing.T) {
	f := func(values []float64) bool {
		var samples []Sample
		for i, v := range values {
			if v != v || v > 1e300 || v < -1e300 { // NaN / overflow guards
				continue
			}
			samples = append(samples, Sample{At: t0.Add(time.Duration(i) * time.Second), Value: v})
		}
		var a Aggregate
		for _, smp := range samples {
			a.add(smp)
		}
		if a.Count != len(samples) {
			return false
		}
		if a.Count == 0 {
			return true
		}
		return a.Min <= a.Mean+1e-9 && a.Mean <= a.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Downsample buckets partition the queried samples — counts
// sum to the range query's length and every bucket is non-empty.
func TestDownsamplePartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, windowMinRaw uint8) bool {
		n := int(nRaw%200) + 1
		windowMin := int(windowMinRaw%30) + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(Options{})
		k := key()
		for i := 0; i < n; i++ {
			at := t0.Add(time.Duration(rng.Intn(3600)) * time.Second)
			if err := s.Append(k, Sample{At: at, Value: float64(i)}); err != nil {
				return false
			}
		}
		from, to := t0, t0.Add(time.Hour)
		samples, err := s.Query(k, from, to)
		if err != nil {
			return false
		}
		buckets, err := s.Downsample(k, from, to, time.Duration(windowMin)*time.Minute)
		if err != nil {
			return false
		}
		total := 0
		for _, b := range buckets {
			if b.Count == 0 {
				return false
			}
			total += b.Count
		}
		return total == len(samples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
