package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// blockKey is the single series most block tests revolve around.
var blockKey = SeriesKey{Device: "urn:district:turin/building:b01/device:d0", Quantity: "temperature"}

// oldRows builds n rows per key ending well before now, so a compaction
// with a short head window cuts all of them. Timestamps are UTC and
// second-aligned so they survive the row codec byte-for-byte.
func oldRows(n int, keys ...SeriesKey) []Row {
	base := time.Now().UTC().Truncate(time.Second).Add(-3 * time.Hour)
	rows := make([]Row, 0, n*len(keys))
	for i := 0; i < n; i++ {
		for _, k := range keys {
			rows = append(rows, Row{
				Key:    k,
				Sample: Sample{At: base.Add(time.Duration(i) * time.Second), Value: float64(i) + 0.25},
			})
		}
	}
	return rows
}

// memReference loads rows into a plain in-memory store, the behavioural
// oracle every merged read path is compared against.
func memReference(rows []Row) *Store {
	mem := New(Options{})
	for _, r := range rows {
		_ = mem.Append(r.Key, r.Sample)
	}
	return mem
}

// assertReadsEqual compares every read path between the oracle and the
// engine under test, byte for byte.
func assertReadsEqual(t *testing.T, want *Store, got Engine, key SeriesKey, from, to time.Time) {
	t.Helper()
	a, errA := want.Query(key, from, to)
	b, errB := got.Query(key, from, to)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("query err: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("query: %d vs %d samples (or differing content)", len(a), len(b))
	}
	aggA, errA := want.Aggregate(key, from, to)
	aggB, errB := got.Aggregate(key, from, to)
	if (errA == nil) != (errB == nil) || !reflect.DeepEqual(aggA, aggB) {
		t.Fatalf("aggregate: %+v (%v) vs %+v (%v)", aggA, errA, aggB, errB)
	}
	for _, window := range []time.Duration{time.Minute, time.Hour, 90 * time.Second} {
		dsA, errA := want.Downsample(key, from, to, window)
		dsB, errB := got.Downsample(key, from, to, window)
		if (errA == nil) != (errB == nil) || !reflect.DeepEqual(dsA, dsB) {
			t.Fatalf("downsample %v: %d (%v) vs %d (%v) buckets\n%+v\n%+v",
				window, len(dsA), errA, len(dsB), errB, dsA, dsB)
		}
	}
	lA, errA := want.Latest(key)
	lB, errB := got.Latest(key)
	if (errA == nil) != (errB == nil) || lA != lB {
		t.Fatalf("latest: %+v (%v) vs %+v (%v)", lA, errA, lB, errB)
	}
	if la, lb := want.Len(key), got.Len(key); la != lb {
		t.Fatalf("len: %d vs %d", la, lb)
	}
}

func TestBlockCompactionPreservesEveryReadPath(t *testing.T) {
	dir := t.TempDir()
	k2 := SeriesKey{Device: "urn:district:turin/building:b02/device:d1", Quantity: "humidity"}
	rows := oldRows(500, blockKey, k2)
	eng := openDurable(t, dir, ShardedOptions{
		Shards: 2,
		Blocks: BlockPolicy{HeadWindow: time.Minute},
	})
	defer eng.Close()
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	// Everything is older than the 1m head window, so it all lives in
	// blocks now; the head must be empty of those rows but every read
	// path must still see them exactly.
	var bTotal int
	for i := 0; i < eng.NumShards(); i++ {
		bTotal += eng.ShardStatus(i).Blocks
	}
	if bTotal == 0 {
		t.Fatal("no blocks cut")
	}
	mem := memReference(rows)
	from, to := time.Time{}, time.Now()
	assertReadsEqual(t, mem, eng, blockKey, from, to)
	assertReadsEqual(t, mem, eng, k2, from, to)
	sortKeys := func(keys []SeriesKey) []SeriesKey {
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Device != keys[j].Device {
				return keys[i].Device < keys[j].Device
			}
			return keys[i].Quantity < keys[j].Quantity
		})
		return keys
	}
	if got, want := sortKeys(eng.Keys()), sortKeys(mem.Keys()); !reflect.DeepEqual(got, want) {
		t.Fatalf("keys: %v vs %v", got, want)
	}
	if got, want := eng.KeysForDevice(blockKey.Device), mem.KeysForDevice(blockKey.Device); !reflect.DeepEqual(got, want) {
		t.Fatalf("keys for device: %v vs %v", got, want)
	}
	// Writes after compaction land in the head and merge seamlessly.
	late := Sample{At: time.Now().UTC().Truncate(time.Second), Value: 99.5}
	if err := eng.Append(blockKey, late); err != nil {
		t.Fatal(err)
	}
	_ = mem.Append(blockKey, late)
	assertReadsEqual(t, mem, eng, blockKey, from, time.Now())
}

func TestBlockCompactionSurvivesRestartAndKill(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(400, blockKey)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	mem := memReference(rows)

	// Clean close, reopen: the manifest snapshot anchors the blocks.
	eng.Close()
	re := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	assertReadsEqual(t, mem, re, blockKey, time.Time{}, time.Now())
	if re.ShardStatus(0).Blocks == 0 {
		t.Fatal("blocks not adopted after restart")
	}

	// Append more, compact, abandon without Close (kill): the snapshot +
	// manifest written by the compaction must fully recover.
	late := oldRows(50, blockKey)
	for i := range late {
		late[i].Sample.At = late[i].Sample.At.Add(20 * time.Minute)
		_ = mem.Append(late[i].Key, late[i].Sample)
	}
	if errs := re.AppendBatch(late); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := re.CompactAll(); err != nil {
		t.Fatal(err)
	}
	re2 := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer re2.Close()
	assertReadsEqual(t, mem, re2, blockKey, time.Time{}, time.Now())
}

func TestBlockCursorStableAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(600, blockKey)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer eng.Close()
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}

	// Walk a few pages against the pure head, compact mid-walk (the rows
	// move from RAM into a block file), then finish the walk. The
	// value-based cursor must keep the union exact: no duplicate, no gap.
	var got []Sample
	var cur Cursor
	to := time.Now()
	pages := 0
	for {
		page, err := eng.QueryPage(blockKey, time.Time{}, to, cur, 50)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Samples...)
		pages++
		if pages == 3 {
			if err := eng.CompactAll(); err != nil {
				t.Fatal(err)
			}
			if eng.ShardStatus(0).Blocks == 0 {
				t.Fatal("compaction cut no block mid-walk")
			}
		}
		if !page.More {
			break
		}
		cur = page.Next
	}
	if len(got) != len(rows) {
		t.Fatalf("cursor walk returned %d samples, want %d", len(got), len(rows))
	}
	for i, smp := range got {
		if !smp.At.Equal(rows[i].Sample.At) || smp.Value != rows[i].Sample.Value {
			t.Fatalf("sample %d = %+v, want %+v", i, smp, rows[i].Sample)
		}
	}
}

func TestBlockReadsUnderConcurrentCompaction(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(300, blockKey)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer eng.Close()
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	mem := memReference(rows)
	want, err := mem.Query(blockKey, time.Time{}, time.Now())
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The first cycle cuts the block; later ones are no-op snapshots,
		// still exercising the publish+evict swap against readers.
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.CompactAll(); err != nil {
				return
			}
		}
	}()
	to := time.Now()
	for i := 0; i < 200; i++ {
		got, err := eng.Query(blockKey, time.Time{}, to)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("iteration %d: %d vs %d samples (or differing content)", i, len(want), len(got))
		}
	}
	close(stop)
	wg.Wait()
}

func TestBlockOrphanAndTmpCleanedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(100, blockKey)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	eng.Close() // no compaction ran: the WAL holds every row

	// A crash between block rename and snapshot write leaves a .blk the
	// manifest does not list, plus possibly an abandoned temp file. Both
	// must be deleted on recovery, and no data lost (the WAL was never
	// truncated past them).
	shardDir := filepath.Join(dir, "shard-0000")
	orphan := filepath.Join(shardDir, "00000000000000ff.blk")
	if err := os.WriteFile(orphan, []byte("not a block at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(shardDir, "0000000000000100.blk.tmp")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer re.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan block not deleted: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp block not deleted: %v", err)
	}
	mem := memReference(rows)
	assertReadsEqual(t, mem, re, blockKey, time.Time{}, time.Now())
}

func TestBlockCorruptManifestBlockFailsOpenLoudly(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(200, blockKey)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	blks, err := filepath.Glob(filepath.Join(dir, "shard-0000", "*.blk"))
	if err != nil || len(blks) == 0 {
		t.Fatalf("no block files: %v", err)
	}
	// Truncating a manifest-listed block is real data loss (the WAL below
	// it is gone); recovery must fail loudly, never silently serve less.
	if err := os.Truncate(blks[0], 10); err != nil {
		t.Fatal(err)
	}
	opts := ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}}
	opts.Dir = dir
	if re, err := OpenSharded(opts); err == nil {
		re.Close()
		t.Fatal("open succeeded over a corrupt manifest-listed block")
	}
}

func TestBlockRetentionDemoteGolden(t *testing.T) {
	dir := t.TempDir()
	// One sample per minute, minute i carrying value i+1, ending hours in
	// the past — all beyond both the head window and the raw horizon.
	base := time.Now().UTC().Truncate(time.Hour).Add(-6 * time.Hour)
	var rows []Row
	for i := 0; i < 10; i++ {
		rows = append(rows, Row{Key: blockKey, Sample: Sample{
			At: base.Add(time.Duration(i)*time.Minute + 5*time.Second), Value: float64(i + 1)}})
	}
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{
		HeadWindow:   time.Minute,
		RetentionRaw: time.Hour,
	}})
	defer eng.Close()
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	// First cycle cuts the block; the second demotes it (a block is only
	// demotable once it exists and lies wholly past the horizon).
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	st := eng.ShardStatus(0)
	if st.Blocks == 0 {
		t.Fatal("no blocks")
	}
	if st.BlockSamples != 10 {
		t.Fatalf("index samples = %d, want 10 (demotion must keep counts)", st.BlockSamples)
	}

	// Raw reads of the demoted range come back empty — the samples are
	// gone by policy, not error.
	got, err := eng.Query(blockKey, time.Time{}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("demoted raw query returned %d samples, want 0", len(got))
	}

	// Whole-series aggregate stays exact: the index aggregates were built
	// from the raw data before demotion.
	agg, err := eng.Aggregate(blockKey, time.Time{}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 10 || agg.Min != 1 || agg.Max != 10 || agg.Sum != 55 || agg.Mean != 5.5 ||
		agg.First.Value != 1 || agg.Last.Value != 10 {
		t.Fatalf("whole-range aggregate = %+v", agg)
	}

	// Partial range over a demoted block folds whole 1m buckets that
	// overlap [from, to]: minutes 2, 3 and 4 here (minute 5's sample sits
	// at +5s past `to`).
	agg, err = eng.Aggregate(blockKey, base.Add(2*time.Minute), base.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 3 || agg.Min != 3 || agg.Max != 5 || agg.Sum != 12 {
		t.Fatalf("partial demoted aggregate = %+v, want count 3 min 3 max 5 sum 12", agg)
	}

	// 1m downsample over the demoted range reproduces the original
	// buckets exactly (one sample per bucket).
	buckets, err := eng.Downsample(blockKey, base, base.Add(10*time.Minute), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 10 {
		t.Fatalf("downsample over demoted block: %d buckets, want 10", len(buckets))
	}
	for i, b := range buckets {
		if b.Count != 1 || b.Min != float64(i+1) || b.Max != float64(i+1) {
			t.Fatalf("bucket %d = %+v", i, b)
		}
	}

	// Latest survives demotion through the index aggregates.
	last, err := eng.Latest(blockKey)
	if err != nil || last.Value != 10 {
		t.Fatalf("latest after demotion = %+v, %v", last, err)
	}
}

func TestBlockRetentionRollupDropGolden(t *testing.T) {
	dir := t.TempDir()
	old := oldRows(50, blockKey) // ~3h old
	fresh := SeriesKey{Device: "urn:district:turin/building:b01/device:d9", Quantity: "temperature"}
	now := time.Now().UTC().Truncate(time.Second)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{
		HeadWindow:      time.Minute,
		RetentionRollup: 2 * time.Hour,
	}})
	defer eng.Close()
	if errs := eng.AppendBatch(old); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.Append(fresh, Sample{At: now, Value: 7}); err != nil {
		t.Fatal(err)
	}
	// Cycle one cuts the old rows into a block (entirely past the 2h
	// rollup horizon); cycle two deletes that block.
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if st := eng.ShardStatus(0); st.Blocks != 0 {
		t.Fatalf("expired block not dropped: %+v", st)
	}
	// Until restart the head catalog still lists the emptied series (the
	// compactor keeps catalog entries when it evicts rows into a block);
	// its data is gone.
	got, err := eng.Query(blockKey, time.Time{}, time.Now())
	if err != nil || len(got) != 0 {
		t.Fatalf("expired series query = %d samples, %v; want empty", len(got), err)
	}
	if n := eng.Len(blockKey); n != 0 {
		t.Fatalf("expired series len = %d, want 0", n)
	}
	if n := eng.Len(fresh); n != 1 {
		t.Fatalf("fresh series len = %d, want 1", n)
	}
	blks, _ := filepath.Glob(filepath.Join(dir, "shard-0000", "*.blk"))
	if len(blks) != 0 {
		t.Fatalf("expired block files left on disk: %v", blks)
	}

	// A restart rebuilds the catalog from the snapshot, which has no rows
	// for the expired series: it is gone entirely.
	eng.Close()
	re := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{
		HeadWindow:      time.Minute,
		RetentionRollup: 2 * time.Hour,
	}})
	defer re.Close()
	if _, err := re.Query(blockKey, time.Time{}, time.Now()); err != ErrNoSeries {
		t.Fatalf("expired series query after restart err = %v, want ErrNoSeries", err)
	}
	if n := re.Len(fresh); n != 1 {
		t.Fatalf("fresh series len after restart = %d, want 1", n)
	}
}

func TestBlockDropSeriesRewritesBlocks(t *testing.T) {
	dir := t.TempDir()
	k2 := SeriesKey{Device: blockKey.Device, Quantity: "humidity"}
	rows := oldRows(100, blockKey, k2)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer eng.Close()
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.DropSeries(blockKey); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(blockKey, time.Time{}, time.Now()); err != ErrNoSeries {
		t.Fatalf("dropped series err = %v, want ErrNoSeries", err)
	}
	if n := eng.Len(k2); n != 100 {
		t.Fatalf("sibling series len = %d, want 100", n)
	}
	// The drop survives a restart: blocks were rewritten, not masked.
	eng.Close()
	re := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer re.Close()
	if _, err := re.Query(blockKey, time.Time{}, time.Now()); err != ErrNoSeries {
		t.Fatalf("dropped series err after restart = %v, want ErrNoSeries", err)
	}
	if n := re.Len(k2); n != 100 {
		t.Fatalf("sibling series len after restart = %d, want 100", n)
	}
}

func TestBlockImportAndReset(t *testing.T) {
	src := t.TempDir()
	rows := oldRows(120, blockKey)
	eng := openDurable(t, src, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	dst := t.TempDir()
	re := openDurable(t, dst, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer re.Close()
	if err := re.ImportShardBlocks(0, filepath.Join(src, "shard-0000")); err != nil {
		t.Fatal(err)
	}
	mem := memReference(rows)
	assertReadsEqual(t, mem, re, blockKey, time.Time{}, time.Now())

	// Reset wipes blocks too, durably.
	if err := re.ResetShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Query(blockKey, time.Time{}, time.Now()); err != ErrNoSeries {
		t.Fatalf("query after reset err = %v, want ErrNoSeries", err)
	}
	blks, _ := filepath.Glob(filepath.Join(dst, "shard-0000", "*.blk"))
	if len(blks) != 0 {
		t.Fatalf("reset left block files: %v", blks)
	}
}

func TestBlockVerifyShardDir(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(150, blockKey)
	eng := openDurable(t, dir, ShardedOptions{Shards: 2, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	results, err := VerifyDataDir(dir)
	if err != nil {
		t.Fatalf("verify clean dir: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("verified %d shard dirs, want 2", len(results))
	}
	var blocks int
	for _, r := range results {
		blocks += r.Blocks
		if len(r.OrphanBlocks) != 0 {
			t.Fatalf("unexpected orphans: %v", r.OrphanBlocks)
		}
	}
	if blocks == 0 {
		t.Fatal("verify saw no blocks")
	}

	// Corruption must surface.
	blks, _ := filepath.Glob(filepath.Join(dir, "shard-*", "*.blk"))
	if len(blks) == 0 {
		t.Fatal("no block files")
	}
	f, err := os.OpenFile(blks[0], os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xfe}, 32); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := VerifyDataDir(dir); err == nil {
		t.Fatal("verify passed over a corrupt block")
	}
}

func TestBlockStatsAndStatusAccounting(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(200, blockKey)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer eng.Close()
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	before := eng.Stats()
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	after := eng.Stats()
	if before.Samples != after.Samples || before.Series != after.Series {
		t.Fatalf("stats changed across compaction: %+v vs %+v", before, after)
	}
	st := eng.ShardStatus(0)
	if st.Blocks == 0 || st.BlockBytes == 0 || st.BlockSamples != 200 {
		t.Fatalf("shard status = %+v", st)
	}
	if st.Samples != 200 || st.Series != 1 {
		t.Fatalf("shard status merged counts = %+v", st)
	}
}

func TestBlockHeadWindowDisabledKeepsLegacySnapshots(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(100, blockKey)
	eng := openDurable(t, dir, ShardedOptions{
		Shards:        1,
		SnapshotEvery: 50,
		Blocks:        BlockPolicy{HeadWindow: -1},
	})
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if st := eng.ShardStatus(0); st.Blocks != 0 {
		t.Fatalf("blocks cut despite disabled head window: %+v", st)
	}
	eng.Close()
	re := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: -1}})
	defer re.Close()
	mem := memReference(rows)
	assertReadsEqual(t, mem, re, blockKey, time.Time{}, time.Now())
}

// TestBlockPagedWalkManyPages exercises the merged QueryPage More/Next
// contract across the head/block boundary with awkward page sizes.
func TestBlockPagedWalkManyPages(t *testing.T) {
	dir := t.TempDir()
	rows := oldRows(237, blockKey)
	eng := openDurable(t, dir, ShardedOptions{Shards: 1, Blocks: BlockPolicy{HeadWindow: time.Minute}})
	defer eng.Close()
	if errs := eng.AppendBatch(rows); errs != nil {
		t.Fatalf("append: %v", errs)
	}
	if err := eng.CompactAll(); err != nil {
		t.Fatal(err)
	}
	// Fresh rows into the head so the walk crosses blocks into head.
	now := time.Now().UTC().Truncate(time.Second)
	for i := 0; i < 23; i++ {
		smp := Sample{At: now.Add(time.Duration(i-30) * time.Second), Value: float64(1000 + i)}
		if err := eng.Append(blockKey, smp); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, Row{Key: blockKey, Sample: smp})
	}
	for _, limit := range []int{1, 7, 100, 1000} {
		var got []Sample
		var cur Cursor
		to := time.Now()
		for {
			page, err := eng.QueryPage(blockKey, time.Time{}, to, cur, limit)
			if err != nil {
				t.Fatalf("limit %d: %v", limit, err)
			}
			got = append(got, page.Samples...)
			if !page.More {
				break
			}
			if len(page.Samples) == 0 {
				t.Fatalf("limit %d: empty page with More set", limit)
			}
			cur = page.Next
		}
		if len(got) != len(rows) {
			t.Fatalf("limit %d: walked %d samples, want %d", limit, len(got), len(rows))
		}
		for i, smp := range got {
			if !smp.At.Equal(rows[i].Sample.At) || smp.Value != rows[i].Sample.Value {
				t.Fatalf("limit %d: sample %d = %+v, want %+v", limit, i, smp, rows[i].Sample)
			}
		}
	}
	_ = fmt.Sprintf // keep fmt imported if assertions change
}
