package tsdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/block"
)

// The merged read path of a block-bearing shard. Every read captures a
// consistent view — the in-memory head result plus retained references
// to the overlapping blocks — under one blockSet read lock, then does
// the block decoding after the unlock against the retained immutable
// files. Compaction's publish+evict runs under the write lock, so a
// reader sees the cut rows exactly once: in the head before the swap,
// in the block after it.

// maxCursorSkip caps the per-source overfetch a merged page performs to
// honour a cursor's same-timestamp skip count. It exceeds any plausible
// number of samples sharing one nanosecond timestamp (and the default
// per-series head bound), so the cap is theoretical; a series with more
// duplicates at a single instant than this could repeat samples across
// a page boundary.
const maxCursorSkip = 1 << 17

func sampleAt(t int64, v float64) Sample {
	return Sample{At: time.Unix(0, t).UTC(), Value: v}
}

// readScratch is the block-decode scratch one merged read borrows: the
// point-decode buffer, the per-source slices of a page merge, and the
// sample arena the decoded points land in. A request touching many
// series (a batch query fanning over selectors) reuses one scratch per
// merged call instead of re-growing these for every series. Nothing
// handed back to callers may alias the scratch — page results are
// copied out before release.
type readScratch struct {
	pts    []block.Point
	srcs   [][]Sample
	capped []bool
	smps   []Sample
	merged []Sample
}

var readScratchPool = sync.Pool{New: func() any { return new(readScratch) }}

func getReadScratch() *readScratch { return readScratchPool.Get().(*readScratch) }

func (rs *readScratch) release() {
	for i := range rs.srcs {
		rs.srcs[i] = nil
	}
	rs.srcs = rs.srcs[:0]
	rs.capped = rs.capped[:0]
	rs.pts = rs.pts[:0]
	rs.smps = rs.smps[:0]
	rs.merged = rs.merged[:0]
	readScratchPool.Put(rs)
}

// blocksFor returns retained references to the shard's blocks that
// contain key and overlap [fromN, toN], in cut order. Callers must
// Release every returned block. Head reads that must be consistent with
// the returned view are performed by the capture callback, still under
// the read lock.
func (bs *blockSet) blocksFor(key block.Key, fromN, toN int64, capture func()) []*block.Block {
	bs.mu.RLock()
	var out []*block.Block
	for _, b := range bs.blocks {
		if b.MaxT() < fromN || b.MinT() > toN {
			continue
		}
		if _, ok := b.Meta(key); ok {
			b.Retain()
			out = append(out, b)
		}
	}
	if capture != nil {
		capture()
	}
	bs.mu.RUnlock()
	return out
}

func releaseAll(blks []*block.Block) {
	for _, b := range blks {
		_ = b.Release()
	}
}

// countRead attributes one merged read to the head or the block path.
func (s *Sharded) countRead(usedBlocks bool) {
	if usedBlocks {
		s.blockReads.Add(1)
	} else {
		s.headReads.Add(1)
	}
}

// mergedQueryPage is Store.QueryPage over head+blocks: per-source
// bounded fetches, a k-way merge in (timestamp, source) order with
// blocks (cut order) before the head, and the cursor's same-timestamp
// skip applied globally. The per-source fetch bound is
// limit+skip+1, so if the merged output fits in the limit every source
// was exhausted — More is exact, never a guess.
func (s *Sharded) mergedQueryPage(key SeriesKey, from, to time.Time, cur Cursor, limit int) (Page, error) {
	i := s.ShardFor(key.Device)
	store, bs := s.shards[i], s.bsets[i]
	if to.IsZero() {
		to = time.Now()
	}
	if to.Before(from) {
		return Page{}, ErrBadInterval
	}
	if limit <= 0 {
		limit = DefaultPageLimit
	}
	start, skip := from, 0
	if !cur.zero() && !cur.After.Before(from) {
		start, skip = cur.After, cur.Seen
	}
	if start.After(to) {
		return Page{}, nil
	}
	need := limit + min(skip, maxCursorSkip) + 1

	var headPage Page
	var headErr error
	startN, toN := start.UnixNano(), to.UnixNano()
	blks := bs.blocksFor(bk(key), startN, toN, func() {
		headPage, headErr = store.QueryPage(key, start, to, Cursor{}, need)
	})
	defer releaseAll(blks)
	s.countRead(len(blks) > 0)
	if headErr != nil && !errors.Is(headErr, ErrNoSeries) {
		return Page{}, headErr
	}
	if errors.Is(headErr, ErrNoSeries) && len(blks) == 0 {
		if s.keyInAnyBlock(bs, bk(key)) {
			return Page{}, nil // series exists, nothing in range
		}
		return Page{}, ErrNoSeries
	}

	// Sources in merge order: blocks in cut order, then the head.
	// Decode scratch (points, per-source views into one sample arena)
	// is pooled across calls; page.Samples below copies out of it.
	rs := getReadScratch()
	defer rs.release()
	srcs, capped, pts, arena := rs.srcs, rs.capped, rs.pts, rs.smps
	for _, b := range blks {
		pts = pts[:0]
		var err error
		pts, err = b.PointsLimit(pts, bk(key), startN, toN, need)
		if err != nil {
			rs.pts = pts
			if errors.Is(err, block.ErrRawDemoted) {
				continue // raw data retired by retention; nothing to page
			}
			return Page{}, err
		}
		if len(pts) == 0 {
			continue
		}
		base := len(arena)
		for _, p := range pts {
			arena = append(arena, sampleAt(p.T, p.V))
		}
		// Full slice expression: later arena appends must not stomp
		// this source's tail.
		srcs = append(srcs, arena[base:len(arena):len(arena)])
		capped = append(capped, len(pts) >= need)
	}
	srcs = append(srcs, headPage.Samples)
	capped = append(capped, headPage.More)
	rs.srcs, rs.capped, rs.pts, rs.smps = srcs, capped, pts, arena

	merged := mergeSamplesInto(rs.merged[:0], srcs, limit+min(skip, maxCursorSkip)+1)
	rs.merged = merged

	var page Page
	page.Samples = make([]Sample, 0, min(limit, len(merged)))
	for _, smp := range merged {
		if skip > 0 && smp.At.Equal(start) {
			skip--
			continue
		}
		page.Samples = append(page.Samples, smp)
		if len(page.Samples) > limit {
			break
		}
	}
	if len(page.Samples) > limit {
		page.Samples = page.Samples[:limit]
		page.More = true
	} else {
		// Output fits: More only if a capped source might hold more.
		// (With the limit+skip+1 bound a capped source forces >limit
		// output, so this only fires in the pathological over-skip
		// case; resume conservatively from the last sample.)
		for _, c := range capped {
			if c {
				page.More = true
				break
			}
		}
	}
	if n := len(page.Samples); n > 0 && page.More {
		last := page.Samples[n-1].At
		seen := 0
		for j := n - 1; j >= 0 && page.Samples[j].At.Equal(last); j-- {
			seen++
		}
		if !cur.zero() && last.Equal(cur.After) {
			seen += cur.Seen
		}
		page.Next = Cursor{After: last, Seen: seen}
	}
	return page, nil
}

// keyInAnyBlock reports whether any published block of the set carries
// the key (range-independent existence check).
func (s *Sharded) keyInAnyBlock(bs *blockSet, key block.Key) bool {
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	for _, b := range bs.blocks {
		if _, ok := b.Meta(key); ok {
			return true
		}
	}
	return false
}

// mergeSamplesInto k-way merges ascending sources in (timestamp, source
// index) order into dst, stopping after max samples. Equal timestamps
// keep source order, which matches the pre-compaction in-head order
// (the compactor cuts rows in stored order). The result is always
// backed by dst's array (or a growth of it), never by a source, so dst
// may be pooled scratch while sources alias store-owned memory.
func mergeSamplesInto(dst []Sample, srcs [][]Sample, max int) []Sample {
	live := 0
	var only []Sample
	for _, s := range srcs {
		if len(s) > 0 {
			live++
			only = s
		}
	}
	if live == 0 {
		return dst
	}
	if live == 1 {
		if len(only) > max {
			only = only[:max]
		}
		return append(dst, only...)
	}
	idx := make([]int, len(srcs))
	for len(dst) < max {
		best := -1
		for si, s := range srcs {
			if idx[si] >= len(s) {
				continue
			}
			if best < 0 || s[idx[si]].At.Before(srcs[best][idx[best]].At) {
				best = si
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, srcs[best][idx[best]])
		idx[best]++
	}
	return dst
}

// mergedQuery materializes a full range query through the merged pager.
func (s *Sharded) mergedQuery(key SeriesKey, from, to time.Time) ([]Sample, error) {
	if to.IsZero() {
		to = time.Now()
	}
	if to.Before(from) {
		return nil, ErrBadInterval
	}
	it := iterPager(s, key, from, to, 0)
	var out []Sample
	for {
		smp, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, smp)
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// mergedLatest returns the newest sample across head and blocks. The
// head normally wins (blocks hold strictly older rows), but an
// out-of-order arrival after a cut can leave the head older than a
// block's index tail, so both are consulted.
func (s *Sharded) mergedLatest(key SeriesKey) (Sample, error) {
	i := s.ShardFor(key.Device)
	store, bs := s.shards[i], s.bsets[i]
	var head Sample
	var headErr error
	var best Sample
	haveBlock := false
	bs.mu.RLock()
	head, headErr = store.Latest(key)
	for _, b := range bs.blocks {
		if m, ok := b.Meta(bk(key)); ok {
			smp := sampleAt(m.LastT, m.LastV)
			if !haveBlock || !smp.At.Before(best.At) {
				best, haveBlock = smp, true
			}
		}
	}
	bs.mu.RUnlock()
	s.countRead(haveBlock && (headErr != nil || head.At.Before(best.At)))
	if headErr == nil && (!haveBlock || !head.At.Before(best.At)) {
		return head, nil
	}
	if haveBlock {
		return best, nil
	}
	return Sample{}, headErr
}

// mergedLen counts stored samples across head and blocks. Demoted
// series keep contributing their index counts — sample accounting stays
// invariant across compaction and retention demotion (only rollup
// deletion shrinks it).
func (s *Sharded) mergedLen(key SeriesKey) int {
	i := s.ShardFor(key.Device)
	store, bs := s.shards[i], s.bsets[i]
	n := store.Len(key)
	bs.mu.RLock()
	for _, b := range bs.blocks {
		if m, ok := b.Meta(bk(key)); ok {
			n += int(m.Count)
		}
	}
	bs.mu.RUnlock()
	return n
}

// shardKeysMerged unions one shard's head catalog with its block
// indexes. A series whose rows have all been cut (or whose head entry
// was lost to a restart) still lists.
func (s *Sharded) shardKeysMerged(i int) []SeriesKey {
	seen := make(map[SeriesKey]struct{})
	for _, k := range s.shards[i].Keys() {
		seen[k] = struct{}{}
	}
	bs := s.bsets[i]
	bs.mu.RLock()
	for _, b := range bs.blocks {
		for _, m := range b.Series() {
			seen[SeriesKey{Device: m.Key.Device, Quantity: m.Key.Quantity}] = struct{}{}
		}
	}
	bs.mu.RUnlock()
	out := make([]SeriesKey, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	return out
}

// ShardKeys lists the series of one shard, head and blocks merged (the
// scatter-gather planners fan over shards with it).
func (s *Sharded) ShardKeys(i int) []SeriesKey {
	if s.bsets == nil {
		return s.shards[i].Keys()
	}
	return s.shardKeysMerged(i)
}

// mergedKeysForDevice unions the owning shard's head and block series
// of one device, sorted by quantity like Store.KeysForDevice.
func (s *Sharded) mergedKeysForDevice(device string) []SeriesKey {
	i := s.ShardFor(device)
	seen := make(map[SeriesKey]struct{})
	for _, k := range s.shards[i].KeysForDevice(device) {
		seen[k] = struct{}{}
	}
	bs := s.bsets[i]
	bs.mu.RLock()
	for _, b := range bs.blocks {
		for _, m := range b.Series() {
			if m.Key.Device == device {
				seen[SeriesKey{Device: device, Quantity: m.Key.Quantity}] = struct{}{}
			}
		}
	}
	bs.mu.RUnlock()
	out := make([]SeriesKey, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Quantity < out[b].Quantity })
	return out
}

// metaAggregate converts a block index entry's whole-series statistics
// into an Aggregate.
func metaAggregate(m block.SeriesMeta) Aggregate {
	return Aggregate{
		Count: int(m.Count),
		Min:   m.Min, Max: m.Max, Sum: m.Sum,
		First: sampleAt(m.FirstT, m.FirstV),
		Last:  sampleAt(m.LastT, m.LastV),
	}
}

// bucketAggregate converts a rollup bucket into an Aggregate.
func bucketAggregate(b block.Bucket) Aggregate {
	return Aggregate{
		Count: int(b.Count),
		Min:   b.Min, Max: b.Max, Sum: b.Sum,
		First: sampleAt(b.FirstT, b.FirstV),
		Last:  sampleAt(b.LastT, b.LastV),
	}
}

// combine folds src into dst: counts/sums add, min/max widen, First is
// the earliest-timestamped (first folded wins ties), Last the latest
// (last folded wins ties — fold blocks in cut order, head last, to
// match raw-scan semantics).
func (a *Aggregate) combine(src Aggregate) {
	if src.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = src
		return
	}
	if src.Min < a.Min {
		a.Min = src.Min
	}
	if src.Max > a.Max {
		a.Max = src.Max
	}
	a.Sum += src.Sum
	a.Count += src.Count
	if src.First.At.Before(a.First.At) {
		a.First = src.First
	}
	if !src.Last.At.Before(a.Last.At) {
		a.Last = src.Last
	}
}

// mergedAggregate is the pushdown Aggregate over head+blocks. Blocks
// fully inside the range contribute their index statistics in O(1)
// without touching sample data; partially covered blocks scan only the
// overlap (raw chunks when present, whole rollup buckets otherwise —
// the documented boundary approximation for demoted data).
func (s *Sharded) mergedAggregate(key SeriesKey, from, to time.Time) (Aggregate, error) {
	i := s.ShardFor(key.Device)
	store, bs := s.shards[i], s.bsets[i]
	if to.IsZero() {
		to = time.Now()
	}
	if to.Before(from) {
		return Aggregate{}, ErrBadInterval
	}
	fromN, toN := from.UnixNano(), to.UnixNano()

	var headAgg Aggregate
	var headErr error
	blks := bs.blocksFor(bk(key), fromN, toN, func() {
		headAgg, headErr = store.Aggregate(key, from, to)
	})
	defer releaseAll(blks)
	s.countRead(len(blks) > 0)
	if headErr != nil && !errors.Is(headErr, ErrNoSeries) {
		return Aggregate{}, headErr
	}
	if errors.Is(headErr, ErrNoSeries) && len(blks) == 0 && !s.keyInAnyBlock(bs, bk(key)) {
		return Aggregate{}, ErrNoSeries
	}

	var agg Aggregate
	rs := getReadScratch()
	defer rs.release()
	for _, b := range blks {
		m, _ := b.Meta(bk(key))
		switch {
		case fromN <= m.MinT && m.MaxT <= toN:
			agg.combine(metaAggregate(m))
		case m.HasRaw():
			var err error
			rs.pts, err = b.Points(rs.pts[:0], bk(key), fromN, toN)
			if err != nil {
				return Aggregate{}, err
			}
			var part Aggregate
			for _, p := range rs.pts {
				part.add(sampleAt(p.T, p.V))
			}
			agg.combine(part)
		default:
			// Demoted: fold every 1m bucket whose samples intersect the
			// range. Boundary buckets are included whole — the
			// approximation raw retention buys.
			bks, err := b.Rollup(bk(key), block.Res1m)
			if err != nil {
				return Aggregate{}, err
			}
			var part Aggregate
			for _, rb := range bks {
				if rb.LastT < fromN || rb.FirstT > toN {
					continue
				}
				part.combine(bucketAggregate(rb))
			}
			agg.combine(part)
		}
	}
	agg.combine(headAgg)
	agg.finish()
	return agg, nil
}

// mergedDownsample is the pushdown Downsample. Windows that are whole
// multiples of a rollup resolution are served from precomputed 1m/1h
// buckets for the fully covered stretches — a month-range scan touches
// rollup frames, not raw chunks — with raw scans only at the window
// boundaries the rollup grid cannot split. Other window widths fall
// back to the exact merged raw walk.
//
// Alignment: rollup buckets start at unix-epoch multiples of their
// resolution, and time.Truncate windows do too (the zero-time offset is
// divisible by both 60s and 3600s), so when res divides window every
// rollup bucket lies wholly inside exactly one window.
func (s *Sharded) mergedDownsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Bucket, error) {
	if window <= 0 {
		return nil, fmt.Errorf("tsdb: non-positive window %v", window)
	}
	var res int64
	switch {
	case window%time.Hour == 0:
		res = block.Res1h
	case window%time.Minute == 0:
		res = block.Res1m
	default:
		// No rollup grid divides the window: exact merged raw walk.
		return downsampleIter(iterPager(s, key, from, to, 0), from, window)
	}

	i := s.ShardFor(key.Device)
	store, bs := s.shards[i], s.bsets[i]
	if to.IsZero() {
		to = time.Now()
	}
	if to.Before(from) {
		return nil, ErrBadInterval
	}
	fromN, toN := from.UnixNano(), to.UnixNano()

	// windows accumulates per-window aggregates; keys are window start
	// nanos (post from-clamp, matching Store.Downsample semantics).
	windows := make(map[int64]*Aggregate)
	fold := func(at time.Time, a Aggregate) {
		startT := at.Truncate(window)
		if startT.Before(from) {
			startT = from
		}
		w := windows[startT.UnixNano()]
		if w == nil {
			w = &Aggregate{}
			windows[startT.UnixNano()] = w
		}
		w.combine(a)
	}

	var headSamples []Sample
	var headErr error
	blks := bs.blocksFor(bk(key), fromN, toN, func() {
		// Materialize the head's contribution while the view is locked
		// (it is bounded by the head window, so this stays small); an
		// iterator paging after the unlock could race a compaction and
		// miss rows mid-cut.
		headSamples, headErr = store.Query(key, from, to)
	})
	defer releaseAll(blks)
	s.countRead(len(blks) > 0)
	if headErr != nil && !errors.Is(headErr, ErrNoSeries) {
		return nil, headErr
	}

	rs := getReadScratch()
	defer rs.release()
	for _, b := range blks {
		m, _ := b.Meta(bk(key))
		bks, err := b.Rollup(bk(key), res)
		if err != nil {
			return nil, err
		}
		raw := m.HasRaw()
		for _, rb := range bks {
			if rb.LastT < fromN || rb.FirstT > toN {
				continue
			}
			if rb.FirstT >= fromN && rb.LastT <= toN {
				// Bucket fully inside the range: fold it whole. res
				// divides window, so the bucket cannot straddle a
				// window boundary.
				fold(time.Unix(0, rb.Start).UTC(), bucketAggregate(rb))
				continue
			}
			// Boundary bucket. Exact when raw survives; whole-bucket
			// approximation once demoted.
			if !raw {
				fold(time.Unix(0, rb.Start).UTC(), bucketAggregate(rb))
				continue
			}
			lo, hi := rb.FirstT, rb.LastT
			if lo < fromN {
				lo = fromN
			}
			if hi > toN {
				hi = toN
			}
			var err error
			rs.pts, err = b.PointsLimit(rs.pts[:0], bk(key), lo, hi, -1)
			if err != nil {
				return nil, err
			}
			for _, p := range rs.pts {
				smp := sampleAt(p.T, p.V)
				var one Aggregate
				one.add(smp)
				fold(smp.At, one)
			}
		}
	}

	// Head samples fold individually (exact).
	for _, smp := range headSamples {
		var one Aggregate
		one.add(smp)
		fold(smp.At, one)
	}

	if len(windows) == 0 {
		if errors.Is(headErr, ErrNoSeries) && !s.keyInAnyBlock(bs, bk(key)) {
			return nil, ErrNoSeries
		}
		return nil, nil
	}
	starts := make([]int64, 0, len(windows))
	for t := range windows {
		starts = append(starts, t)
	}
	sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
	out := make([]Bucket, 0, len(starts))
	for _, t := range starts {
		a := windows[t]
		a.finish()
		out = append(out, Bucket{Start: time.Unix(0, t).UTC(), Aggregate: *a})
	}
	return out, nil
}
