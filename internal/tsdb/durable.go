package tsdb

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// The durable layer of the Sharded engine. Each shard owns a segmented
// write-ahead log under <Dir>/shard-NNNN: the shard's single-writer
// worker journals every queued row batch (group-committed — one fsync
// covers everything queued behind the first item) BEFORE applying it to
// the in-memory store, so a row is never acked without being on disk
// first. Periodically the worker dumps the shard's store into a
// snapshot file at the current log watermark and deletes the segments
// below it, bounding both recovery time and disk footprint. Boot-time
// recovery is the reverse: load the latest snapshot, replay the log
// tail above its watermark, and the series catalog rebuilds itself as
// rows land in the store.

// shardDisk is one shard's durable state; only that shard's worker
// goroutine mutates it after recovery. sinceSnap and lastSnap are
// atomics purely so metric scrapes can read them from other
// goroutines — the worker remains the only writer.
type shardDisk struct {
	log *wal.Log
	dir string
	mx  *shardMetrics // nil when the engine runs unmetered

	sinceSnap atomic.Int64 // rows appended since the last snapshot
	lastSnap  atomic.Int64 // unix-nanos of the last snapshot cut
}

// shardMetrics holds one shard's latency histograms. Gauges over the
// shard's live state are registered as scrape-time callbacks instead,
// so the append hot path never updates them.
type shardMetrics struct {
	walAppend  *obs.Histogram
	fsync      *obs.Histogram
	snapDur    *obs.Histogram
	compactDur *obs.Histogram
}

func newShardMetrics(reg *obs.Registry, i int) *shardMetrics {
	shard := obs.Labels{"shard": strconv.Itoa(i)}
	return &shardMetrics{
		walAppend: reg.Histogram("repro_tsdb_wal_append_seconds",
			"WAL group-commit append latency, per shard.",
			obs.LatencyBuckets, shard),
		fsync: reg.Histogram("repro_tsdb_wal_fsync_seconds",
			"WAL data-file fsync latency, per shard.",
			obs.FastLatencyBuckets, shard),
		snapDur: reg.Histogram("repro_tsdb_snapshot_duration_seconds",
			"Snapshot cut duration, per shard.",
			obs.LatencyBuckets, shard),
		compactDur: reg.Histogram("repro_tsdb_block_compaction_seconds",
			"Block compaction cycle duration (cut + retention + snapshot), per shard.",
			obs.LatencyBuckets, shard),
	}
}

// engineMeta pins layout decisions a reopen must honour.
type engineMeta struct {
	Shards int `json:"shards"`
}

const metaFile = "engine.json"

// loadOrWriteMeta reconciles the requested shard count with the one the
// data directory was created with: rows are placed by device-hash %
// shards, so reopening with a different count would strand them. The
// on-disk value wins.
func loadOrWriteMeta(dir string, shards int) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("tsdb: %w", err)
	}
	path := filepath.Join(dir, metaFile)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m engineMeta
		if err := json.Unmarshal(raw, &m); err != nil || m.Shards <= 0 {
			return 0, fmt.Errorf("tsdb: corrupt %s: %v", path, err)
		}
		return m.Shards, nil
	case os.IsNotExist(err):
		// tmp + fsync + rename (+ directory sync), like snapshots: a
		// crash during first boot must leave either no meta file or a
		// whole one — a truncated engine.json would brick the data dir
		// on every reopen.
		raw, _ := json.Marshal(engineMeta{Shards: shards})
		tmp := path + ".tmp"
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return 0, fmt.Errorf("tsdb: %w", err)
		}
		_, werr := f.Write(raw)
		if serr := f.Sync(); werr == nil {
			werr = serr
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp, path)
		}
		if werr != nil {
			os.Remove(tmp)
			return 0, fmt.Errorf("tsdb: %w", werr)
		}
		// Best effort, like the WAL's own directory fsyncs.
		_ = wal.SyncDir(dir)
		return shards, nil
	default:
		return 0, fmt.Errorf("tsdb: %w", err)
	}
}

// recoverShard rebuilds one shard's store from its snapshot and log
// tail, then leaves the log open for the shard worker to append to.
// Workers are not running yet, so rows apply directly. onSync (may be
// nil) is handed to the log as its fsync-latency observer. The returned
// manifest names the block files the snapshot anchors (nil for legacy
// or empty snapshots); the caller opens them.
func recoverShard(dir string, store *Store, opts ShardedOptions, onSync func(time.Duration)) (*shardDisk, []string, error) {
	apply := func(p []byte) error {
		rows, err := decodeRows(p)
		if err != nil {
			return err
		}
		if errs := store.AppendBatch(rows); errs != nil {
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
		}
		return nil
	}

	var manifest []string
	snapSeq, sr, err := wal.LatestSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	if sr != nil {
		first := true
		for {
			p, err := sr.Record()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return nil, nil, errors.Join(err, sr.Close())
			}
			if first {
				first = false
				// The first record of a block-bearing snapshot is the
				// block manifest, not rows.
				if names, ok, merr := decodeManifest(p); ok {
					if merr != nil {
						return nil, nil, errors.Join(merr, sr.Close())
					}
					manifest = names
					continue
				}
			}
			if err := apply(p); err != nil {
				return nil, nil, errors.Join(err, sr.Close())
			}
		}
		// The snapshot was applied to EOF; a close error on the
		// read-only file cannot invalidate what was decoded.
		_ = sr.Close() //lint:ignore closecheck read-only snapshot already applied to EOF; close error cannot lose data
	}

	log, err := wal.Open(dir, wal.Options{
		SegmentBytes: opts.SegmentBytes,
		Fsync:        opts.Fsync,
		SyncEvery:    opts.SyncEvery,
		OnSync:       onSync,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := log.Replay(snapSeq, func(_ uint64, p []byte) error { return apply(p) }); err != nil {
		return nil, nil, errors.Join(err, log.Close())
	}
	disk := &shardDisk{log: log, dir: dir}
	disk.lastSnap.Store(time.Now().UnixNano())
	return disk, manifest, nil
}

// ReadShardDir streams the row batches a shard directory holds — the
// latest snapshot first, then the WAL tail above its watermark —
// without opening a live engine. The cluster restore path replays a
// copied shard directory through the receiving node's own write path
// with it, so the rows are re-journaled locally instead of adopting the
// source's files wholesale.
func ReadShardDir(dir string, fn func([]Row) error) error {
	apply := func(p []byte) error {
		rows, err := decodeRows(p)
		if err != nil {
			return err
		}
		return fn(rows)
	}
	snapSeq, sr, err := wal.LatestSnapshot(dir)
	if err != nil {
		return err
	}
	if sr != nil {
		first := true
		for {
			p, err := sr.Record()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return errors.Join(err, sr.Close())
			}
			if first {
				first = false
				// Skip the block manifest: ReadShardDir emits only the
				// rows that can replay through a write path (head
				// snapshot rows + WAL tail). Block files ship wholesale
				// via BlockFiles/ImportShardBlocks — demoted data has
				// no raw rows to replay.
				if _, ok, _ := decodeManifest(p); ok {
					continue
				}
			}
			if err := apply(p); err != nil {
				return errors.Join(err, sr.Close())
			}
		}
		_ = sr.Close() //lint:ignore closecheck read-only snapshot already applied to EOF; close error cannot lose data
	}
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return err
	}
	if err := log.Replay(snapSeq, func(_ uint64, p []byte) error { return apply(p) }); err != nil {
		return errors.Join(err, log.Close())
	}
	return log.Close()
}

// maybeSnapshot cuts a snapshot of the shard's store at the current log
// watermark when the record- or time-based cadence is due, then drops
// the log segments and older snapshots below it. Runs on the shard
// worker, so the store sees no concurrent writes while dumping. On a
// block-bearing shard the snapshot step IS the compaction cycle: head
// rows past the head window move into a block file in the same pass.
// Reports whether a pass ran at all (even a failed one) — the caller
// bumps the shard generation on it, since a compaction pass may have
// republished the block view.
func (s *Sharded) maybeSnapshot(store *Store, disk *shardDisk, bs *blockSet) bool {
	pending := disk.sinceSnap.Load()
	if pending == 0 {
		return false
	}
	lastSnap := time.Unix(0, disk.lastSnap.Load())
	due := (s.snapEvery > 0 && int(pending) >= s.snapEvery) ||
		(s.snapInterval > 0 && time.Since(lastSnap) >= s.snapInterval)
	if !due {
		return false
	}
	start := time.Now()
	disk.lastSnap.Store(start.UnixNano()) // even on failure: retry next cadence, not next batch
	if bs != nil {
		_ = s.compactShard(store, disk, bs) // on failure: log intact, previous view authoritative
		return true
	}
	seq := disk.log.LastSeq()
	err := store.writeSnapshot(disk.dir, seq)
	if disk.mx != nil {
		disk.mx.snapDur.ObserveDuration(time.Since(start))
	}
	if err != nil {
		return true // log intact, nothing truncated; recovery still complete
	}
	_ = disk.log.TruncateBefore(seq + 1)
	wal.RemoveSnapshotsBefore(disk.dir, seq)
	disk.sinceSnap.Store(0)
	return true
}

// snapshotChunk is how many rows one snapshot record carries.
const snapshotChunk = 2048

// writeSnapshot dumps every sample of the store into a snapshot file at
// watermark seq. The caller must be the store's only writer. Each
// series is flattened into a sample slice under its mutex and written
// to the snapshot file after the unlock — a reader of a hot series
// never waits on the snapshot's buffered writes.
func (s *Store) writeSnapshot(dir string, seq uint64) error {
	return wal.WriteSnapshot(dir, seq, func(sw *wal.SnapshotWriter) error {
		rows := make([]Row, 0, snapshotChunk)
		var buf []byte
		flush := func() error {
			if len(rows) == 0 {
				return nil
			}
			buf = encodeRows(buf[:0], rows)
			rows = rows[:0]
			return sw.Record(buf)
		}
		for _, key := range s.Keys() {
			s.mu.RLock()
			sr := s.series[key]
			s.mu.RUnlock()
			if sr == nil {
				continue
			}
			sr.mu.Lock()
			if len(sr.spill) > 0 {
				sr.foldSpill()
			}
			samples := sr.flatten()
			sr.mu.Unlock()
			for _, smp := range samples {
				rows = append(rows, Row{Key: key, Sample: smp})
				if len(rows) == snapshotChunk {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		return flush()
	})
}

// ---------------------------------------------------------------------
// Row record codec
// ---------------------------------------------------------------------

// encodeRows appends the WAL/snapshot encoding of a row batch to dst.
// Consecutive rows of the same series carry a 1-byte key-reuse flag
// instead of repeating the strings — batched producers ship per-device
// runs, so the common case is a handful of key payloads per record.
func encodeRows(dst []byte, rows []Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	var prev SeriesKey
	for i := range rows {
		r := &rows[i]
		if i > 0 && r.Key == prev {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(len(r.Key.Device)))
			dst = append(dst, r.Key.Device...)
			dst = binary.AppendUvarint(dst, uint64(len(r.Key.Quantity)))
			dst = append(dst, r.Key.Quantity...)
			prev = r.Key
		}
		dst = binary.AppendVarint(dst, r.Sample.At.UnixNano())
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Sample.Value))
	}
	return dst
}

var errBadRecord = errors.New("tsdb: malformed row record")

// decodeRows parses one encoded row batch. The record arrived through a
// CRC-checked frame, so a decode failure means a version mismatch or a
// bug, not bit rot — it is returned, never papered over.
func decodeRows(p []byte) ([]Row, error) {
	n, off := binary.Uvarint(p)
	if off <= 0 || n > uint64(len(p)) { // each row needs >= 1 byte
		return nil, errBadRecord
	}
	rows := make([]Row, 0, n)
	var key SeriesKey
	readString := func() (string, bool) {
		l, m := binary.Uvarint(p[off:])
		if m <= 0 {
			return "", false
		}
		off += m
		if uint64(len(p)-off) < l {
			return "", false
		}
		s := string(p[off : off+int(l)])
		off += int(l)
		return s, true
	}
	for i := uint64(0); i < n; i++ {
		if off >= len(p) {
			return nil, errBadRecord
		}
		flag := p[off]
		off++
		if flag == 1 {
			dev, ok := readString()
			if !ok {
				return nil, errBadRecord
			}
			qty, ok := readString()
			if !ok {
				return nil, errBadRecord
			}
			key = SeriesKey{Device: dev, Quantity: qty}
		} else if flag != 0 || i == 0 {
			return nil, errBadRecord
		}
		at, m := binary.Varint(p[off:])
		if m <= 0 {
			return nil, errBadRecord
		}
		off += m
		if len(p)-off < 8 {
			return nil, errBadRecord
		}
		val := math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
		off += 8
		rows = append(rows, Row{Key: key, Sample: Sample{At: time.Unix(0, at).UTC(), Value: val}})
	}
	return rows, nil
}
