package repro

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/obs"
)

// TestSystemTraceIngest is the cross-service tracing golden: one
// /v2/ingest request carrying a caller-minted traceparent lands at a
// durable measurements DB, and the SAME trace ID is retrievable from
// that service's /v1/trace/{id} ring with the write path's stage
// timings — dedup claim, WAL group append, store apply, and live-hub
// publish — attributed to the one request.
func TestSystemTraceIngest(t *testing.T) {
	s, base := durableMeasureDB(t, t.TempDir())
	defer s.Close()
	c := &client.Client{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Subscribe FIRST: the hub-publish stage only runs when a live
	// subscriber exists at flush time.
	sub, err := c.Streams().SubscribeService(ctx, base, "#")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitForGauge(t, c, base, "repro_stream_subscribers", 1)

	const dev = "urn:district:turin/building:b01/device:tr0"
	body := `{"rows":[
		{"device":"` + dev + `","quantity":"temperature","at":"2015-03-09T10:00:00Z","value":20.5},
		{"device":"` + dev + `","quantity":"temperature","at":"2015-03-09T10:01:00Z","value":21.25}
	]}`
	traceID := obs.NewTraceID()
	req, err := http.NewRequest(http.MethodPost, base+"/v2/ingest", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "trace-key-1")
	req.Header.Set(obs.TraceHeader, obs.FormatTraceparent(traceID, obs.NewSpanID()))
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", rsp.StatusCode)
	}
	if got, _, ok := obs.ParseTraceparent(rsp.Header.Get(obs.TraceHeader)); !ok || got != traceID {
		t.Fatalf("response traceparent = %q, want trace ID %s", rsp.Header.Get(obs.TraceHeader), traceID)
	}

	// The published rows reach the live subscriber.
	select {
	case <-sub.Events:
	case <-time.After(5 * time.Second):
		t.Fatal("no live event for the traced ingest")
	}

	// The span ring records after the response is written; poll briefly.
	tr := waitForTrace(t, c, base, traceID)
	if tr.TraceID != traceID || len(tr.Spans) != 1 {
		t.Fatalf("trace = %+v, want 1 span for %s", tr, traceID)
	}
	span := tr.Spans[0]
	if span.Service != "measuredb" || span.Route != "/v2/ingest" || span.Status != http.StatusOK {
		t.Fatalf("span = %+v", span)
	}
	stages := map[string]float64{}
	for _, st := range span.Stages {
		stages[st.Name] = st.DurationMS
	}
	for _, want := range []string{"dedup-claim", "wal-append", "store-apply", "hub-publish"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("stage %q missing from span (got %v)", want, span.Stages)
		}
	}
}

// waitForGauge polls a service's metrics snapshot until the named
// instrument reaches at least want.
func waitForGauge(t *testing.T, c *client.Client, base, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := c.Ops(base).Metrics(context.Background())
		if err == nil {
			for _, in := range snap.Instruments {
				if in.Name == name && in.Value >= want {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauge %s never reached %g (last err: %v)", name, want, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitForTrace polls /v1/trace/{id} until the service has retained the
// span (the ring records just after the response flushes).
func waitForTrace(t *testing.T, c *client.Client, base, id string) *api.TraceResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr, err := c.Ops(base).Trace(context.Background(), id)
		if err == nil {
			return tr
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared: %v", id, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
